"""Common interface between CPU simulators and memory models.

The paper's CPU simulators (ZSim, gem5, OpenPiton) all talk to memory
through the same narrow contract: the CPU issues a memory operation with
an address, a direction and an issue timestamp, and the memory model
answers with the service latency (Section V-A). Every model in this
package — fixed latency, M/D/1, the cycle-level DRAM controller, the
flawed simulator analogs, CXL, and the Mess analytical simulator itself —
implements this interface, which is what makes them interchangeable
inside :class:`repro.cpu.system.System`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

from ..request import AccessType, MemoryRequest

__all__ = [
    "AccessType",
    "MemoryModel",
    "MemoryModelStats",
    "MemoryRequest",
]


@dataclass
class MemoryModelStats:
    """Counters every memory model keeps."""

    reads: int = 0
    writes: int = 0
    total_latency_ns: float = 0.0
    bytes_transferred: int = 0
    first_issue_ns: float = field(default=float("nan"))
    last_completion_ns: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def mean_latency_ns(self) -> float:
        """Average service latency over all accesses (0 when idle)."""
        return self.total_latency_ns / self.accesses if self.accesses else 0.0

    @property
    def read_ratio(self) -> float:
        """Fraction of accesses that were reads (1.0 when idle)."""
        return self.reads / self.accesses if self.accesses else 1.0

    @property
    def bandwidth_gbps(self) -> float:
        """Achieved bandwidth over the active interval, in GB/s."""
        if self.accesses == 0:
            return 0.0
        span = self.last_completion_ns - self.first_issue_ns
        if span <= 0:
            return 0.0
        return self.bytes_transferred / span  # bytes/ns == GB/s

    def record(self, request: MemoryRequest, latency_ns: float) -> None:
        """Account one completed access."""
        if request.access_type.is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.total_latency_ns += latency_ns
        self.bytes_transferred += request.size_bytes
        if math.isnan(self.first_issue_ns):
            self.first_issue_ns = request.issue_time_ns
        self.last_completion_ns = max(
            self.last_completion_ns, request.issue_time_ns + latency_ns
        )


class MemoryModel(abc.ABC):
    """Abstract memory model: maps a request to its service latency.

    Subclasses implement :meth:`_service_latency_ns`; this base class
    handles statistics so every model reports bandwidth, latency and
    read-ratio uniformly.
    """

    def __init__(self) -> None:
        self.stats = MemoryModelStats()

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in experiment tables."""

    @abc.abstractmethod
    def _service_latency_ns(self, request: MemoryRequest) -> float:
        """Latency from issue to data return for ``request``."""

    def access(self, request: MemoryRequest) -> float:
        """Serve one request and return its latency in nanoseconds."""
        latency = self._service_latency_ns(request)
        self.stats.record(request, latency)
        return latency

    def reset(self) -> None:
        """Clear statistics and any queue/occupancy state."""
        self.stats = MemoryModelStats()

    def notify_window(self, now_ns: float) -> None:  # noqa: B027
        """Hook invoked periodically by the CPU simulator.

        Most models ignore it; the Mess analytical simulator uses it to
        run its feedback-control iteration at simulation-window
        boundaries.
        """
