"""Coarse "internal DDR" model (ZSim / gem5 built-in DDR analog).

CPU simulators ship simplified DDR models: a handful of timing
parameters, per-channel pipes, and a crude write-turnaround charge. The
paper's evaluation (Figures 4c and 5c) finds these models get the curve
*shape* right — linear region, saturation, writes hurting — but
underestimate the saturated bandwidth (69-93 GB/s simulated vs
92-116 GB/s measured on Skylake) and excessively penalize writes,
spreading the write-heavy curves too far. This analog reproduces both
biases: a scheduling-inefficiency inflation on every access and a full
turnaround charge on *every* direction switch (real controllers batch
writes to amortize it).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import CACHE_LINE_BYTES
from .base import MemoryModel, MemoryRequest
from .queueing import SingleServerQueue


class InternalDdrModel(MemoryModel):
    """Per-channel pipes with pessimistic write turnarounds.

    Parameters
    ----------
    unloaded_latency_ns:
        Idle-device read latency (row hit path).
    peak_bandwidth_gbps:
        Theoretical aggregate bandwidth of the memory system.
    channels:
        Number of independent pipes; requests round-robin by line address.
    inefficiency:
        Service-time inflation modeling unmodeled scheduling slack; the
        reciprocal bounds achievable bandwidth (0.78 -> ~78% of peak).
    turnaround_ns:
        Charge applied whenever a channel switches between reads and
        writes; applied unbatched, which over-penalizes mixed traffic
        exactly the way the paper observed.
    """

    def __init__(
        self,
        unloaded_latency_ns: float = 28.0,
        peak_bandwidth_gbps: float = 128.0,
        channels: int = 6,
        inefficiency: float = 0.78,
        turnaround_ns: float = 9.0,
    ) -> None:
        super().__init__()
        if unloaded_latency_ns <= 0 or peak_bandwidth_gbps <= 0:
            raise ConfigurationError("latency and bandwidth must be positive")
        if channels < 1:
            raise ConfigurationError(f"channels must be >= 1, got {channels}")
        if not 0.0 < inefficiency <= 1.0:
            raise ConfigurationError("inefficiency must be in (0, 1]")
        if turnaround_ns < 0:
            raise ConfigurationError("turnaround must be non-negative")
        self.unloaded_latency_ns = unloaded_latency_ns
        self.peak_bandwidth_gbps = peak_bandwidth_gbps
        self.channels = channels
        self.inefficiency = inefficiency
        self.turnaround_ns = turnaround_ns
        per_channel = peak_bandwidth_gbps / channels
        service = CACHE_LINE_BYTES / (per_channel * inefficiency)
        self._pipes = [SingleServerQueue(service) for _ in range(channels)]
        self._last_was_write = [False] * channels

    @property
    def name(self) -> str:
        return "internal-ddr"

    def _service_latency_ns(self, request: MemoryRequest) -> float:
        channel = (request.address // CACHE_LINE_BYTES) % self.channels
        pipe = self._pipes[channel]
        is_write = request.access_type.is_write
        service = pipe.service_ns
        if is_write != self._last_was_write[channel]:
            service += self.turnaround_ns
        self._last_was_write[channel] = is_write
        wait = pipe.admit(request.issue_time_ns, service_ns=service)
        return self.unloaded_latency_ns + wait

    def reset(self) -> None:
        super().reset()
        for pipe in self._pipes:
            pipe.reset()
        self._last_was_write = [False] * self.channels
