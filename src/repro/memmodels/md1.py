"""M/D/1 queueing-theory memory model (ZSim's middle option).

Latency is the unloaded device time plus the Pollaczek-Khinchine waiting
time of an M/D/1 queue whose deterministic service time is one
cache-line burst at the channel's peak bandwidth. The paper finds this
model "correctly models the memory system behavior in the linear part of
the curves" while modeling saturation less accurately and missing the
true read/write asymmetry (Section IV-B) — behaviour this implementation
shares by construction.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import CACHE_LINE_BYTES
from .base import MemoryModel, MemoryRequest
from .queueing import ArrivalRateEstimator


class MD1QueueModel(MemoryModel):
    """Unloaded latency + M/D/1 waiting time against an aggregate pipe.

    Parameters
    ----------
    unloaded_latency_ns:
        Device latency with an empty queue.
    peak_bandwidth_gbps:
        Aggregate service capacity of the memory system.
    write_service_inflation:
        Multiplier on the service time of writes: a mild penalty that
        gives the "some difference between read and write traffic" the
        paper observes, without the real tWTR/tWR dynamics.
    max_utilization:
        Cap on the utilization used in the waiting-time formula; keeps
        the model finite when arrivals exceed capacity.
    """

    def __init__(
        self,
        unloaded_latency_ns: float = 25.0,
        peak_bandwidth_gbps: float = 128.0,
        write_service_inflation: float = 1.1,
        max_utilization: float = 0.995,
        rate_alpha: float = 0.05,
    ) -> None:
        super().__init__()
        if unloaded_latency_ns <= 0:
            raise ConfigurationError("unloaded latency must be positive")
        if peak_bandwidth_gbps <= 0:
            raise ConfigurationError("peak bandwidth must be positive")
        if write_service_inflation < 1.0:
            raise ConfigurationError("write inflation must be >= 1")
        if not 0.0 < max_utilization < 1.0:
            raise ConfigurationError("max utilization must be in (0, 1)")
        self.unloaded_latency_ns = unloaded_latency_ns
        self.peak_bandwidth_gbps = peak_bandwidth_gbps
        self.write_service_inflation = write_service_inflation
        self.max_utilization = max_utilization
        self._rate = ArrivalRateEstimator(alpha=rate_alpha)

    @property
    def name(self) -> str:
        return "md1"

    @property
    def service_ns(self) -> float:
        """Deterministic service time of one cache line."""
        return CACHE_LINE_BYTES / self.peak_bandwidth_gbps

    def _service_latency_ns(self, request: MemoryRequest) -> float:
        self._rate.observe(request.issue_time_ns)
        service = self.service_ns
        if request.access_type.is_write:
            service *= self.write_service_inflation
        rho = min(self.max_utilization, self._rate.rate_per_ns * service)
        # Pollaczek-Khinchine mean wait for M/D/1: rho * D / (2 * (1 - rho))
        waiting = rho * service / (2.0 * (1.0 - rho))
        return self.unloaded_latency_ns + waiting

    def reset(self) -> None:
        super().reset()
        self._rate.reset()
