"""Fixed-latency memory model.

The simplest model in every CPU simulator (ZSim's default, OpenPiton's
recent extension): every request completes after a constant delay,
regardless of load or direction. The paper shows its defect plainly
(Figure 5a): the latency can be tuned to match the unloaded system, but
the simulated bandwidth is unbounded — ZSim's fixed model reached
342 GB/s, 2.7x the theoretical maximum of the modeled DDR4 system.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .base import MemoryModel, MemoryRequest


class FixedLatencyModel(MemoryModel):
    """Constant service latency, infinite bandwidth."""

    def __init__(self, latency_ns: float = 25.0) -> None:
        super().__init__()
        if latency_ns <= 0:
            raise ConfigurationError(f"latency must be positive, got {latency_ns}")
        self.latency_ns = latency_ns

    @property
    def name(self) -> str:
        return "fixed-latency"

    def _service_latency_ns(self, request: MemoryRequest) -> float:
        return self.latency_ns
