"""Intel Optane persistent-memory model (App Direct mode).

The paper's Mess simulator release supports Optane, characterized on a
16-core Cascade Lake with 2x 128 GB Optane DIMMs in App Direct mode
(Section V-B footnote). The technology was discontinued in 2023, so the
paper does not analyze it further — but the model belongs in a complete
reproduction of the released artifact.

The behaviours that distinguish Optane from DRAM (well documented by
the UCSD characterization studies the paper cites, [39] and [40]):

- much higher media latency: ~170 ns sequential, ~300 ns random reads
  at the device, versus ~30 ns for DRAM;
- an order of magnitude less bandwidth, strongly asymmetric: ~6.6 GB/s
  reads but only ~2.3 GB/s writes per DIMM;
- a 256-byte internal access granularity (the XPLine): cache-line
  requests that fall in the same XPLine merge in the on-DIMM buffer,
  others pay the full media access;
- writes are absorbed by a small on-DIMM write-pending queue and then
  drain at media speed, so sustained write traffic collapses quickly.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import CACHE_LINE_BYTES
from .base import AccessType, MemoryModel, MemoryRequest
from .queueing import SingleServerQueue

#: Internal access granularity of the 3D-XPoint media.
XPLINE_BYTES = 256


class OptaneModel(MemoryModel):
    """Two-DIMM Optane memory target.

    Parameters
    ----------
    dimms:
        Interleaved Optane DIMMs (the paper's platform has two).
    read_bandwidth_gbps_per_dimm / write_bandwidth_gbps_per_dimm:
        Sustained media bandwidths per DIMM.
    sequential_read_ns / random_read_ns:
        Media latency of an XPLine-buffered versus an uncached read.
    write_ack_latency_ns:
        Latency of a write absorbed by the write-pending queue.
    write_queue_lines:
        Write-pending queue capacity per DIMM, in cache lines.
    """

    def __init__(
        self,
        dimms: int = 2,
        read_bandwidth_gbps_per_dimm: float = 6.6,
        write_bandwidth_gbps_per_dimm: float = 2.3,
        sequential_read_ns: float = 170.0,
        random_read_ns: float = 305.0,
        write_ack_latency_ns: float = 60.0,
        write_queue_lines: int = 64,
    ) -> None:
        super().__init__()
        if dimms < 1:
            raise ConfigurationError(f"dimms must be >= 1, got {dimms}")
        if read_bandwidth_gbps_per_dimm <= 0 or write_bandwidth_gbps_per_dimm <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if sequential_read_ns <= 0 or random_read_ns < sequential_read_ns:
            raise ConfigurationError(
                "need 0 < sequential_read_ns <= random_read_ns"
            )
        if write_ack_latency_ns <= 0 or write_queue_lines < 1:
            raise ConfigurationError("invalid write-queue parameters")
        self.dimms = dimms
        self.sequential_read_ns = sequential_read_ns
        self.random_read_ns = random_read_ns
        self.write_ack_latency_ns = write_ack_latency_ns
        self.write_queue_lines = write_queue_lines
        self._read_pipes = [
            SingleServerQueue(CACHE_LINE_BYTES / read_bandwidth_gbps_per_dimm)
            for _ in range(dimms)
        ]
        self._write_pipes = [
            SingleServerQueue(CACHE_LINE_BYTES / write_bandwidth_gbps_per_dimm)
            for _ in range(dimms)
        ]
        self._open_xpline = [-1] * dimms

    @property
    def name(self) -> str:
        return f"optane-x{self.dimms}"

    @property
    def peak_read_bandwidth_gbps(self) -> float:
        return self.dimms * CACHE_LINE_BYTES / self._read_pipes[0].service_ns

    @property
    def peak_write_bandwidth_gbps(self) -> float:
        return self.dimms * CACHE_LINE_BYTES / self._write_pipes[0].service_ns

    def _route(self, address: int) -> int:
        """DIMM selection: XPLine-granular interleave."""
        return (address // XPLINE_BYTES) % self.dimms

    def _service_latency_ns(self, request: MemoryRequest) -> float:
        dimm = self._route(request.address)
        xpline = request.address // XPLINE_BYTES
        if request.access_type is AccessType.READ:
            buffered = self._open_xpline[dimm] == xpline
            self._open_xpline[dimm] = xpline
            media = (
                self.sequential_read_ns if buffered else self.random_read_ns
            )
            wait = self._read_pipes[dimm].admit(request.issue_time_ns)
            return media + wait
        # write: absorbed by the write-pending queue unless the media
        # drain is backlogged past the queue's reach
        wait = self._write_pipes[dimm].admit(request.issue_time_ns)
        allowance = self.write_queue_lines * self._write_pipes[dimm].service_ns
        stall = max(0.0, wait - allowance)
        return self.write_ack_latency_ns + stall

    def reset(self) -> None:
        super().reset()
        for pipe in (*self._read_pipes, *self._write_pipes):
            pipe.reset()
        self._open_xpline = [-1] * self.dimms
