"""Command-line interface: ``python -m repro <command>``.

Mirrors the original artifact's runner scripts: list and run the paper's
experiments, dump a platform's curves, or characterize a simulated
memory system from scratch.

Commands
--------
``list``
    Show every registered experiment id with its title.
``run <experiment> [--scale S] [--csv PATH]``
    Run one experiment and print its table; optionally dump the rows.
``curves <platform> [--csv PATH]``
    Print (and optionally save) a preset platform's curve family.
``characterize [--cores N] [--channels C] [--preset TIMING]``
    Run the Mess benchmark against a fresh cycle-level memory system
    and print the measured family and metrics.
"""

from __future__ import annotations

import argparse
import sys

from .bench.harness import MessBenchmark, MessBenchmarkConfig
from .core.metrics import compute_metrics
from .cpu.system import SystemConfig
from .dram.timing import PRESETS, preset
from .errors import MessError
from .experiments.registry import EXPERIMENTS, run_experiment
from .memmodels.cycle_accurate import CycleAccurateModel
from .platforms.presets import (
    TABLE_I_PLATFORMS,
    cxl_expander_family,
    family,
    optane_family,
    remote_socket_family,
)

_SPECIAL_FAMILIES = {
    "cxl": cxl_expander_family,
    "optane": optane_family,
    "remote-socket": remote_socket_family,
}


def _platform_families() -> dict:
    families = {
        spec.name.lower().replace(" ", "-"): (lambda s=spec: family(s))
        for spec in TABLE_I_PLATFORMS
    }
    families.update(_SPECIAL_FAMILIES)
    return families


def _cmd_list(_args: argparse.Namespace) -> int:
    for experiment_id, runner in EXPERIMENTS.items():
        doc = (runner.__module__ or "").split(".")[-1]
        print(f"{experiment_id:10s} ({doc})")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment, scale=args.scale)
    print(result.format_table())
    if args.csv:
        result.to_csv(args.csv)
        print(f"rows written to {args.csv}")
    return 0


def _cmd_curves(args: argparse.Namespace) -> int:
    families = _platform_families()
    if args.platform not in families:
        print(
            f"unknown platform {args.platform!r}; available:\n  "
            + "\n  ".join(sorted(families)),
            file=sys.stderr,
        )
        return 2
    curves = families[args.platform]()
    metrics = compute_metrics(curves)
    print(f"{curves.name}")
    for curve in curves:
        points = " ".join(
            f"({b:.1f},{l:.0f})"
            for b, l in zip(curve.bandwidth_gbps, curve.latency_ns)
        )
        print(f"  r={curve.read_ratio:.2f}: {points}")
    print(
        f"unloaded {metrics.unloaded_latency_ns:.0f} ns, max latency "
        f"{metrics.max_latency_min_ns:.0f}-{metrics.max_latency_max_ns:.0f} ns"
    )
    if args.csv:
        curves.to_csv(args.csv)
        print(f"curves written to {args.csv}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    timing = preset(args.preset)
    bench = MessBenchmark(
        system_config=SystemConfig(cores=args.cores),
        memory_factory=lambda: CycleAccurateModel(
            timing, channels=args.channels, write_queue_depth=48
        ),
        config=MessBenchmarkConfig(
            store_fractions=(0.0, 0.5, 1.0),
            nop_counts=(0, 150, 600, 3000),
            warmup_ns=4000.0,
            measure_ns=10_000.0,
        ),
        name=f"{timing.name}x{args.channels}",
        theoretical_bandwidth_gbps=timing.channel_peak_gbps * args.channels,
    )
    curves = bench.run()
    metrics = compute_metrics(curves)
    for point in bench.points:
        print(
            f"  sf={point.store_fraction:.1f} nop={point.nop_count:5d}: "
            f"{point.bandwidth_gbps:6.1f} GB/s @ {point.latency_ns:6.1f} ns "
            f"(read ratio {point.measured_read_ratio:.2f})"
        )
    print(
        f"unloaded {metrics.unloaded_latency_ns:.0f} ns; saturated "
        f"{metrics.saturated_bw_min_pct:.0f}-{metrics.saturated_bw_max_pct:.0f}%"
    )
    if args.csv:
        curves.to_csv(args.csv)
        print(f"curves written to {args.csv}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mess reproduction: experiments, curves, characterization",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments").set_defaults(
        func=_cmd_list
    )

    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", type=float, default=1.0)
    run_parser.add_argument("--csv", default=None)
    run_parser.set_defaults(func=_cmd_run)

    curves_parser = commands.add_parser(
        "curves", help="print a preset platform's curve family"
    )
    curves_parser.add_argument("platform")
    curves_parser.add_argument("--csv", default=None)
    curves_parser.set_defaults(func=_cmd_curves)

    char_parser = commands.add_parser(
        "characterize", help="Mess-benchmark a simulated memory system"
    )
    char_parser.add_argument(
        "--preset", default="DDR4-2666", choices=sorted(PRESETS)
    )
    char_parser.add_argument("--channels", type=int, default=3)
    char_parser.add_argument("--cores", type=int, default=8)
    char_parser.add_argument("--csv", default=None)
    char_parser.set_defaults(func=_cmd_characterize)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except MessError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
