"""Command-line interface: ``python -m repro <command>``.

Mirrors the original artifact's runner scripts: list and run the paper's
experiments, dump a platform's curves, or characterize a simulated
memory system from scratch.

Commands
--------
``list``
    Show every registered experiment with its title, tags and cost.
``run [EXPERIMENT ...] [--scenario FILE|PRESET] [--all] [--jobs N]
[--scale S] [--opt K=V] [--engine NAME] [--cache-dir DIR] [--no-cache]
[--manifest PATH] [--csv PATH] [--trace PATH] [--metrics PATH]
[--retries N] [--deadline S] [--resume MANIFEST] [--inject-faults PLAN]``
    Run one or many experiments and/or scenarios — in parallel with
    ``--jobs``, through the content-addressed on-disk cache unless
    ``--no-cache`` — print their tables, and write a JSON run manifest
    (wall times, row counts, cache hits, result digests, failure
    taxonomy). ``--scenario`` takes a scenario JSON file or a preset
    name (see ``repro scenario list``) and runs it through the same
    runner, cache and telemetry path; with a single scenario, ``--opt``
    pairs are dotted-path overrides (``--opt system.cores=8``).
    ``--trace`` collects telemetry and writes a Chrome trace-event file
    (``chrome://tracing`` / Perfetto); ``--metrics`` writes a
    Prometheus text snapshot; either flag also embeds a per-experiment
    telemetry summary in the manifest. ``--retries`` re-dispatches
    transient failures (crash/timeout/cache-error) with exponential
    backoff; ``--deadline`` bounds each experiment's wall time,
    terminating hung workers; ``--resume`` re-executes only what a
    previous run's manifest records as unfinished and rewrites the
    merged checkpoint; ``--inject-faults`` activates a fault-plan JSON
    file for chaos testing. ``--engine`` selects the execution engine
    (``reference`` or ``vectorized`` — bit-identical results; see
    :mod:`repro.engine`), overriding any scenario-file ``engine``
    field; ``--opt engine=vectorized`` works as a dotted-path override
    too. On partial failure the exit code is 1 and a per-failure-class
    summary goes to stderr.
``scenario {list,show,validate,digest} [SCENARIO ...] [--scale S]``
    Work with declarative scenarios: list the named presets, show a
    preset or file as canonical JSON, validate scenario files (exit 1
    on problems), or print the stable content digest the cache keys
    on.
``cache {info,clear} [--cache-dir DIR] [--backend SPEC] [--ttl S]
[--max-entries N] [--json]``
    Inspect or empty the result cache (default ``~/.cache/repro-mess``,
    overridable via ``$REPRO_CACHE_DIR``). ``info`` reports the backend
    type, entry/byte totals, digest-shard distribution and quarantined
    counts uniformly for every backend; ``--backend`` selects a storage
    backend or comma-separated tier stack (``dir``, ``sqlite``,
    ``memory``, ``tiered``; see :mod:`repro.serve.backends`).
    ``--ttl`` / ``--max-entries`` configure sqlite-tier retention
    (expiry on read, oldest-first eviction on write); ``info`` reports
    the lifetime expired/evicted totals. ``info --json`` emits a
    machine-readable report with a per-entry size breakdown.
``telemetry summarize PATH [--json]``
    Roll up an exported telemetry file (Chrome trace or JSONL): span
    durations, counter totals, control-loop sample ranges.
``check [--rules RPR001,...] [--format text|json] [--list-rules]
[PATH ...]``
    Run the project-specific static-analysis pass (unit safety,
    determinism, telemetry hot path, registry hygiene, float equality,
    scenario-layer boundary, engine-seam bypass; ``.json`` paths are
    validated as run manifests or — when they carry the
    ``repro_scenario`` marker — as scenario files). Exits 1 when any
    finding is reported. Defaults to checking the installed package.
``curves <platform> [--csv PATH]``
    Print (and optionally save) a preset platform's curve family.
``characterize [--cores N] [--channels C] [--preset TIMING]
[--engine NAME]``
    Run the Mess benchmark against a fresh cycle-level memory system
    and print the measured family and metrics.
``bench [--filter NAME|TAG] [--engine reference|vectorized|both]
[--repeat N] [--json PATH] [--min-speedup X] [--list]``
    Time registered perf benches (component inner loops plus one
    ``experiment.<id>`` bench per figure) under the selected engines,
    cross-check that both engines produced bit-identical results, and
    report reference/vectorized speedups. ``--json`` writes the
    ``repro_bench`` payload (the committed ``BENCH_curves.json`` is
    the perf trajectory of record); ``--min-speedup`` exits 1 when any
    measured speedup falls below the floor.
``serve [--host H] [--port P] [--backend SPEC] [--cache-dir DIR]
[--max-inflight N] [--queue-limit N] [--deadline S] [--shards N]
[--hedge] [--warm MANIFEST] [--ttl S] [--max-entries N]``
    Run the asyncio characterization service (:mod:`repro.serve`):
    digest-keyed scenario results over HTTP with tiered cache
    backends, single-flight request coalescing, backpressure (429/503)
    and per-request deadlines (504). Routes: ``/healthz``,
    ``/metrics`` (Prometheus), ``/stats``, ``GET /v1/result/<digest>``
    and ``POST /v1/{characterize,simulate,profile}``. ``--warm``
    pre-seeds the cache from a ``repro run`` manifest before the
    socket opens. With ``--shards N`` it becomes a cluster: N shard
    processes on ports ``P+1..P+N`` (sharing ``--cache-dir``) behind a
    digest-range router on ``P`` with health probing, per-shard
    circuit breakers and failover (:mod:`repro.serve.cluster`). Runs
    until interrupted; SIGTERM drains gracefully and exits 0.
``route --shard URL [--shard URL ...] [--host H] [--port P] [--hedge]
[--hedge-delay-ms MS] [--max-inflight N] [--queue-limit N]
[--deadline S]``
    Run only the cluster router over already-running ``repro serve``
    shards — the deployment shape where shards and router live on
    different machines. Same routes and drain behaviour as ``serve``.
``loadgen [--scenarios K] [--requests N] [--clients C] [--passes P]
[--seed S] [--backend SPEC] [--cache-dir DIR] [--url URL]
[--shards N] [--hedge] [--json PATH] [--assert-hit-ratio X]
[--assert-p99-ms MS]``
    Replay a deterministic request schedule against a serve endpoint —
    an in-process server by default, a running ``repro serve`` via
    ``--url``, or a private in-process N-shard cluster via
    ``--shards`` — and report per-pass hit ratios, coalescing counts
    and p50/p99 latency. ``--assert-hit-ratio`` / ``--assert-p99-ms``
    gate the final pass (exit 1 on violation; CI's serve-smoke and
    cluster-smoke jobs use both); result digests are cross-checked
    against each other and exit 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys

from pathlib import Path

from . import engine as engine_mod
from . import telemetry
from .bench.harness import MessBenchmarkConfig
from .checks import (
    analyze_paths,
    available_rules,
    compare as compare_baseline,
    load_baseline,
    render_sarif,
    write_baseline,
)
from .core.metrics import compute_metrics
from .cpu.system import SystemConfig
from .dram.timing import PRESETS, preset
from .errors import CheckError, ConfigurationError, MessError
from .experiments.registry import SPECS, experiment_ids
from .platforms.presets import (
    TABLE_I_PLATFORMS,
    cxl_expander_family,
    family,
    optane_family,
    remote_socket_family,
)
from .resilience import RetryPolicy, load_fault_plan
from .runner import ResultCache, RunManifest, resume_run, run_many
from .scenario import (
    Scenario,
    load_scenario,
    parse_assignments,
    preset_scenario,
    scenario_ids,
)

_SPECIAL_FAMILIES = {
    "cxl": cxl_expander_family,
    "optane": optane_family,
    "remote-socket": remote_socket_family,
}


def _platform_families() -> dict:
    families = {
        spec.name.lower().replace(" ", "-"): (lambda s=spec: family(s))
        for spec in TABLE_I_PLATFORMS
    }
    families.update(_SPECIAL_FAMILIES)
    return families


def _cmd_list(_args: argparse.Namespace) -> int:
    for experiment_id in experiment_ids():
        spec = SPECS[experiment_id]
        extra = f" [{', '.join(spec.tags)}]" if spec.tags else ""
        opts = (
            f" options: {', '.join(sorted(spec.params))}" if spec.params else ""
        )
        print(f"{experiment_id:10s} {spec.cost:9s} {spec.title}{extra}{opts}")
    return 0


def _parse_options(pairs: list[str]) -> dict:
    """``--opt key=value`` pairs -> a typed keyword-option dict.

    Shares :func:`repro.scenario.options.parse_assignments` with the
    scenario override path, so experiment options and scenario
    overrides coerce values identically.
    """
    try:
        return parse_assignments(pairs)
    except ConfigurationError as exc:
        # usage error, same exit code as the argparse-level ones
        print(f"error: --opt {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def _resolve_scenario(ref: str, scale: float = 1.0):
    """A scenario reference: a preset name or a scenario JSON file."""
    path = Path(ref)
    if path.suffix == ".json" or path.exists():
        return load_scenario(path)
    if ref in scenario_ids():
        return preset_scenario(ref, scale)
    raise ConfigurationError(
        f"unknown scenario {ref!r}: not a file, and not one of "
        + ", ".join(scenario_ids())
    )


def _run_resilience_options(
    args: argparse.Namespace,
) -> "tuple[RetryPolicy | None, object]":
    """``--retries`` / ``--inject-faults`` -> runner keyword values."""
    retry = None
    if args.retries:
        if args.retries < 0:
            print(
                f"error: --retries must be >= 0, got {args.retries}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        retry = RetryPolicy(max_attempts=args.retries + 1)
    plan = load_fault_plan(args.inject_faults) if args.inject_faults else None
    return retry, plan


def _cmd_run(args: argparse.Namespace) -> int:
    ids = list(args.experiments)
    if args.resume:
        if ids or args.all or args.scenario or args.opt:
            print(
                "error: --resume re-runs a manifest's unfinished entries; "
                "it cannot be combined with experiment ids, --all, "
                "--scenario or --opt",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return _run_resume(args)
    if args.all:
        if ids:
            print(
                "error: give experiment ids or --all, not both",
                file=sys.stderr,
            )
            raise SystemExit(2)
        ids = experiment_ids()
    scenarios = [_resolve_scenario(ref, args.scale) for ref in args.scenario]
    if not ids and not scenarios:
        print("error: no experiments given (try --all)", file=sys.stderr)
        raise SystemExit(2)
    unknown = sorted(set(ids) - set(SPECS))
    if unknown:
        print(
            f"error: unknown experiment(s) {unknown}; available: "
            + " ".join(experiment_ids()),
            file=sys.stderr,
        )
        raise SystemExit(2)

    options = _parse_options(args.opt)
    experiment_options = None
    if options:
        if len(ids) == 1 and not scenarios:
            # `engine` is a scenario field, not an experiment option:
            # route the dotted override to the same seam as --engine.
            engine_override = options.pop("engine", None)
            if engine_override is not None:
                try:
                    engine_override = engine_mod.resolve(str(engine_override))
                except ConfigurationError as exc:
                    print(f"error: --opt engine: {exc}", file=sys.stderr)
                    raise SystemExit(2) from exc
                if args.engine is not None and args.engine != engine_override:
                    print(
                        "error: --engine and --opt engine= disagree "
                        f"({args.engine} vs {engine_override})",
                        file=sys.stderr,
                    )
                    raise SystemExit(2)
                args.engine = engine_override
            if options:
                experiment_options = {ids[0]: options}
        elif len(scenarios) == 1 and not ids:
            # dotted-path overrides on the scenario spec
            scenarios[0] = scenarios[0].with_overrides(options)
        else:
            print(
                "error: --opt applies to a single experiment or a single "
                "scenario",
                file=sys.stderr,
            )
            raise SystemExit(2)

    labels = ids + [f"scenario:{scenario.name}" for scenario in scenarios]
    total = len(labels)
    done = 0

    def progress(record) -> None:
        nonlocal done
        done += 1
        status = "ok" if record.status == "ok" else f"ERROR ({record.error})"
        print(
            f"[{done}/{total}] {record.experiment_id:10s} {status}  "
            f"{record.duration_s:6.2f}s  rows={record.rows}  "
            f"cache_hits={record.cache_hits}",
            flush=True,
        )

    retry, fault_plan = _run_resilience_options(args)
    collect_telemetry = bool(args.trace or args.metrics)
    outcome = run_many(
        ids,
        jobs=args.jobs if args.jobs is not None else 1,
        scale=args.scale,
        options=experiment_options,
        scenarios=scenarios or None,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=progress,
        collect_telemetry=collect_telemetry,
        deadline_s=args.deadline,
        retry=retry,
        fault_plan=fault_plan,
        engine=args.engine,
    )
    for label in labels:
        result = outcome.results.get(label)
        if result is not None:
            print()
            print(result.format_table())
    if args.csv:
        if total != 1:
            print("error: --csv applies to a single experiment", file=sys.stderr)
            raise SystemExit(2)
        result = outcome.results.get(labels[0])
        if result is not None:
            result.to_csv(args.csv)
            print(f"rows written to {args.csv}")
    if outcome.telemetry is not None:
        if args.trace:
            telemetry.write_chrome_trace(outcome.telemetry, args.trace)
            print(f"trace written to {args.trace}")
        if args.metrics:
            telemetry.write_prometheus(outcome.telemetry, args.metrics)
            print(f"metrics written to {args.metrics}")
    manifest_path = args.manifest or ("run-manifest.json" if args.all else None)
    if manifest_path:
        outcome.manifest.write(manifest_path)
        print(f"manifest written to {manifest_path}")
    return _finish_run(outcome)


def _finish_run(outcome) -> int:
    """Print the summary; on partial failure, classify on stderr, exit 1."""
    print(outcome.manifest.summary())
    if outcome.manifest.ok:
        return 0
    for kind, count in sorted(outcome.manifest.failure_summary().items()):
        noun = "experiment" if count == 1 else "experiments"
        print(f"failed: {kind}: {count} {noun}", file=sys.stderr)
    return 1


def _run_resume(args: argparse.Namespace) -> int:
    """``repro run --resume MANIFEST``: finish what a prior run left."""
    retry, fault_plan = _run_resilience_options(args)
    checkpoint = RunManifest.read(args.resume)
    pending = checkpoint.pending()
    if not pending:
        print(f"{args.resume}: nothing to resume ({checkpoint.summary()})")
        return 0
    total = len(pending)
    done = 0

    def progress(record) -> None:
        nonlocal done
        done += 1
        status = "ok" if record.status == "ok" else f"ERROR ({record.error})"
        print(
            f"[{done}/{total}] {record.experiment_id:10s} {status}  "
            f"{record.duration_s:6.2f}s  rows={record.rows}  "
            f"cache_hits={record.cache_hits}",
            flush=True,
        )

    collect_telemetry = bool(args.trace or args.metrics)
    outcome = resume_run(
        args.resume,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=progress,
        collect_telemetry=collect_telemetry,
        deadline_s=args.deadline,
        retry=retry,
        fault_plan=fault_plan,
        engine=args.engine,
    )
    for label in sorted(outcome.results):
        print()
        print(outcome.results[label].format_table())
    if outcome.telemetry is not None:
        if args.trace:
            telemetry.write_chrome_trace(outcome.telemetry, args.trace)
            print(f"trace written to {args.trace}")
        if args.metrics:
            telemetry.write_prometheus(outcome.telemetry, args.metrics)
            print(f"metrics written to {args.metrics}")
    # the merged manifest replaces the checkpoint, so resume is
    # repeatable: each pass re-runs only what is still unfinished
    manifest_path = args.manifest or args.resume
    outcome.manifest.write(manifest_path)
    print(f"manifest written to {manifest_path}")
    return _finish_run(outcome)


def _cmd_cache(args: argparse.Namespace) -> int:
    backend = None
    if args.backend:
        from .serve.backends import make_backend

        backend = make_backend(
            args.backend,
            args.cache_dir,
            ttl_s=args.ttl,
            max_entries=args.max_entries,
        )
    elif args.ttl is not None or args.max_entries is not None:
        print(
            "error: --ttl/--max-entries require a sqlite tier; pass "
            "--backend sqlite (or a stack containing it)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    cache = ResultCache(args.cache_dir, backend=backend)
    try:
        return _run_cache_action(args, cache)
    finally:
        cache.close()


def _run_cache_action(args: argparse.Namespace, cache: ResultCache) -> int:
    if args.action == "info":
        if args.json:
            print(json.dumps(cache.info(detail=True), indent=2, sort_keys=True))
            return 0
        info = cache.info()
        print(f"cache root: {info['root']}")
        print(f"backend:    {info['backend']} ({info['location']})")
        print(f"entries:    {info['entries']}")
        print(f"size:       {info['bytes'] / 1e6:.2f} MB")
        shards = info.get("shards") or {}
        if shards.get("count"):
            print(
                f"shards:     {shards['count']} "
                f"(max {shards['max']}, mean {shards['mean']:.1f})"
            )
        for kind, count in sorted(info["kinds"].items()):
            size = info["kind_bytes"].get(kind, 0)
            print(f"  {kind}: {count} ({size / 1e6:.2f} MB)")
        if info.get("ttl_s") is not None or info.get("max_entries") is not None:
            print(
                f"retention:  ttl_s={info.get('ttl_s')} "
                f"max_entries={info.get('max_entries')}"
            )
        if info.get("expired") or info.get("evictions"):
            print(
                f"retired:    {info.get('expired', 0)} expired, "
                f"{info.get('evictions', 0)} evicted"
            )
        corrupt = info["corrupt_entries"]
        print(
            f"corrupt:    {corrupt} quarantined "
            f"({info['corrupt_bytes'] / 1e3:.1f} kB)"
        )
        if corrupt:
            print(
                "  corrupt entries were detected on read, moved aside as "
                "*.json.corrupt and recomputed; `cache clear` removes them"
            )
    else:  # clear
        if getattr(args, "json", False):
            print("error: --json applies to `cache info`", file=sys.stderr)
            raise SystemExit(2)
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.http import serve as serve_async
    from .serve.service import ServiceConfig

    if args.shards:
        return _serve_cluster(args)

    config = ServiceConfig(
        backend=args.backend,
        cache_dir=args.cache_dir,
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        deadline_s=args.deadline,
        ttl_s=args.ttl,
        max_entries=args.max_entries,
    )

    def ready(server) -> None:
        print(
            f"serving on {server.url} (backend {args.backend}, "
            f"max-inflight {args.max_inflight})",
            flush=True,
        )

    try:
        asyncio.run(
            serve_async(
                config,
                host=args.host,
                port=args.port,
                ready=ready,
                warm_manifest=args.warm,
            )
        )
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _serve_cluster(args: argparse.Namespace) -> int:
    """``repro serve --shards N``: N shard processes behind a router.

    Shard ``i`` is a child ``repro serve`` on ``port + 1 + i`` sharing
    the cluster's ``--cache-dir``; the router listens on ``--port``.
    Shard pids are printed so an operator (or the CI chaos job) can
    SIGKILL one and watch the fabric fail over.
    """
    import asyncio
    import subprocess
    import time as time_mod

    from .serve.cluster import ClusterConfig, ClusterRouter, spawn_shards
    from .serve.http import serve_service

    extra = [
        "--queue-limit", str(args.queue_limit),
        "--deadline", str(args.deadline),
    ]
    if args.ttl is not None:
        extra += ["--ttl", str(args.ttl)]
    if args.max_entries is not None:
        extra += ["--max-entries", str(args.max_entries)]
    if args.warm is not None:
        extra += ["--warm", args.warm]
    processes = spawn_shards(
        args.shards,
        args.port + 1,
        host=args.host,
        backend=args.backend,
        cache_dir=args.cache_dir,
        max_inflight=args.max_inflight,
        extra_args=extra,
    )
    urls = [
        f"http://{args.host}:{args.port + 1 + index}"
        for index in range(args.shards)
    ]
    for process, url in zip(processes, urls):
        print(f"shard pid={process.pid} url={url}", flush=True)

    async def main() -> None:
        from .errors import MessError
        from .serve.client import ServiceClient

        deadline = time_mod.monotonic() + 60.0
        for url in urls:
            client = ServiceClient(url)
            try:
                while True:
                    try:
                        await client.healthz()
                        break
                    except (ConnectionError, OSError, MessError):
                        if time_mod.monotonic() > deadline:
                            raise
                        await asyncio.sleep(0.1)
            finally:
                await client.close()
        router = ClusterRouter(
            urls,
            ClusterConfig(
                hedge=args.hedge,
                deadline_s=args.deadline,
                queue_limit=args.queue_limit,
            ),
        )

        def ready(server) -> None:
            print(
                f"routing on {server.url} over {len(urls)} shards "
                f"(backend {args.backend}, hedge {args.hedge})",
                flush=True,
            )

        await serve_service(router, host=args.host, port=args.port, ready=ready)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.cluster import ClusterConfig, ClusterRouter
    from .serve.http import serve_service

    router = ClusterRouter(
        args.shard,
        ClusterConfig(
            hedge=args.hedge,
            hedge_delay_ms=args.hedge_delay_ms,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            deadline_s=args.deadline,
        ),
    )

    def ready(server) -> None:
        print(
            f"routing on {server.url} over {len(args.shard)} shards",
            flush=True,
        )

    try:
        asyncio.run(
            serve_service(router, host=args.host, port=args.port, ready=ready)
        )
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .serve.loadgen import LoadgenConfig, run_loadgen

    config = LoadgenConfig(
        scenarios=args.scenarios,
        requests=args.requests,
        clients=args.clients,
        passes=args.passes,
        seed=args.seed,
        backend=args.backend,
        cache_dir=args.cache_dir,
        url=args.url,
        max_inflight=args.max_inflight,
        shards=args.shards,
        hedge=args.hedge,
    )
    report = run_loadgen(config)
    for entry in report["passes"]:
        print(
            f"pass {entry['pass']}: {entry['ok']}/{entry['requests']} ok  "
            f"hit_ratio={entry['hit_ratio']:.2f}  "
            f"coalesced={entry['coalesced']}  computed={entry['computed']}  "
            f"p50={entry['p50_ms']:.1f}ms  p99={entry['p99_ms']:.1f}ms",
            flush=True,
        )
        for detail in entry["error_detail"]:
            print(f"  error: {detail}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"loadgen report written to {args.json}")

    failures = 0
    if not report["digest_consistent"]:
        print(
            "error: served results were not digest-consistent",
            file=sys.stderr,
        )
        failures += 1
    final = report["passes"][-1]
    if final["errors"]:
        print(
            f"error: final pass had {final['errors']} failed request(s)",
            file=sys.stderr,
        )
        failures += 1
    if args.assert_hit_ratio is not None and (
        final["hit_ratio"] < args.assert_hit_ratio
    ):
        print(
            f"error: final-pass hit ratio {final['hit_ratio']:.3f} is below "
            f"the {args.assert_hit_ratio:.3f} floor",
            file=sys.stderr,
        )
        failures += 1
    if args.assert_p99_ms is not None and final["p99_ms"] > args.assert_p99_ms:
        print(
            f"error: final-pass p99 {final['p99_ms']:.1f} ms exceeds the "
            f"{args.assert_p99_ms:.1f} ms ceiling",
            file=sys.stderr,
        )
        failures += 1
    return 1 if failures else 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    summary = telemetry.summarize_file(args.path)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(telemetry.format_summary(summary))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id, title in available_rules():
            print(f"{rule_id}  {title}")
        return 0
    rules = None
    if args.rules:
        rules = sorted(
            {item.strip() for spec in args.rules for item in spec.split(",") if item.strip()}
        )
    # Default target: the installed package itself, so `repro check`
    # works from any checkout layout (and from an installed wheel).
    paths = args.paths or [str(Path(__file__).parent)]
    try:
        report = analyze_paths(
            paths,
            rules=rules,
            jobs=args.jobs or None,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            changed_only=args.changed_only,
            since=args.since,
        )
    except CheckError as exc:
        # usage/configuration errors exit 2; findings exit 1
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings = report.findings
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"baseline with {len(findings)} finding(s) written to "
            f"{args.write_baseline}"
        )
        return 0

    baselined = 0
    stale = 0
    if args.baseline:
        try:
            accepted = load_baseline(args.baseline)
        except CheckError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        comparison = compare_baseline(findings, accepted)
        findings = comparison.new
        baselined = len(comparison.baselined)
        stale = comparison.stale

    if args.format == "sarif":
        print(render_sarif(findings), end="")
    elif args.format == "json":
        print(json.dumps([finding.to_dict() for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        noun = "finding" if len(findings) == 1 else "findings"
        scope = ", ".join(paths)
        qualifier = " new" if args.baseline else ""
        detail = []
        if baselined:
            detail.append(f"{baselined} baselined")
        if stale:
            detail.append(f"{stale} stale baseline entr{'y' if stale == 1 else 'ies'}: tighten with --write-baseline")
        if report.changed_only:
            detail.append("changed files only")
        if report.files_from_cache:
            detail.append(
                f"{report.files_from_cache}/{report.files_scanned} files from cache"
            )
        suffix = f" ({'; '.join(detail)})" if detail else ""
        if findings:
            print(f"{len(findings)}{qualifier} {noun} in {scope}{suffix}")
        else:
            print(f"clean: no{qualifier} findings in {scope}{suffix}")
    return 1 if findings else 0


def _is_fault_plan(ref: str) -> bool:
    """Whether ``ref`` is a JSON file carrying the fault-plan marker."""
    path = Path(ref)
    if path.suffix != ".json" or not path.exists():
        return False
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(payload, dict) and "repro_fault_plan" in payload


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.action == "list":
        for name in scenario_ids():
            scenario = preset_scenario(name)
            print(f"{name:24s} {scenario.description or scenario.name}")
        return 0
    refs = list(args.refs)
    if args.action == "validate" and not refs:
        refs = scenario_ids()
    if not refs:
        print(
            f"error: scenario {args.action} needs a preset name or a "
            "scenario JSON file",
            file=sys.stderr,
        )
        raise SystemExit(2)
    overrides = _parse_options(getattr(args, "opt", None) or [])
    failures = 0
    for ref in refs:
        if args.action == "validate" and _is_fault_plan(ref):
            # fault plans share the examples/ directory but are a
            # different document kind, validated by `repro check`
            # (RPR105); globbing `examples/*.json` should skip them
            print(f"{ref}: skipped (fault plan; validated by `repro check`)")
            continue
        try:
            scenario = _resolve_scenario(ref, args.scale)
            if overrides:
                scenario = scenario.with_overrides(overrides)
        except MessError as exc:
            if args.action != "validate":
                raise
            failures += 1
            print(f"{ref}: FAIL")
            print(f"  {exc}")
            continue
        if args.action == "show":
            print(json.dumps(scenario.to_spec(), indent=2, sort_keys=True))
        elif args.action == "digest":
            print(f"{scenario.digest()}  {ref}")
        else:  # validate
            problems = scenario.validate()
            if problems:
                failures += 1
                print(f"{ref}: FAIL")
                for problem in problems:
                    print(f"  {problem}")
            else:
                print(f"{ref}: ok ({scenario.digest()[:12]})")
    return 1 if failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import perf

    if args.list:
        for name in perf.bench_names(args.filter):
            print(f"{name:40s} [{', '.join(perf._REGISTRY[name].tags)}]")
        return 0
    engines = (
        list(engine_mod.ENGINE_NAMES) if args.engine == "both" else [args.engine]
    )

    def progress(entry: dict) -> None:
        times = entry["engine_times_s"]
        timing = "  ".join(
            f"{engine}={elapsed:.3f}s" for engine, elapsed in times.items()
        )
        speedup = (
            f"  speedup={entry['speedup']:.1f}x" if "speedup" in entry else ""
        )
        print(f"{entry['name']:40s} {timing}{speedup}", flush=True)

    payload = perf.run_benches(
        filter=args.filter,
        engines=engines,
        repeat=args.repeat,
        progress=progress,
    )
    if args.json:
        perf.write_payload(payload, args.json)
        print(f"bench payload written to {args.json}")
    tag_floors: dict[str, float] = {}
    for spec in args.tag_floor or []:
        tag, sep, value = spec.partition("=")
        if not sep or not tag:
            print(
                f"error: --tag-floor expects TAG=FLOOR, got {spec!r}",
                file=sys.stderr,
            )
            return 2
        try:
            tag_floors[tag] = float(value)
        except ValueError:
            print(
                f"error: --tag-floor {tag}: {value!r} is not a number",
                file=sys.stderr,
            )
            return 2
    failed = False
    floor = args.min_speedup
    if floor is not None:
        # the global floor covers benches no tag-scoped floor claims
        worst = perf.min_speedup(payload, exclude_tags=tag_floors)
        if worst is None and not tag_floors:
            print(
                "error: --min-speedup needs both engines timed",
                file=sys.stderr,
            )
            return 2
        if worst is not None:
            if worst < floor:
                print(
                    f"error: minimum speedup {worst:.2f}x is below the "
                    f"{floor:.2f}x floor",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(f"minimum speedup {worst:.2f}x (floor {floor:.2f}x)")
    for tag in sorted(tag_floors):
        tag_floor = tag_floors[tag]
        worst = perf.min_speedup(payload, tag=tag)
        if worst is None:
            print(
                f"error: --tag-floor {tag}: no timed benches carry that tag",
                file=sys.stderr,
            )
            return 2
        if worst < tag_floor:
            print(
                f"error: minimum {tag} speedup {worst:.2f}x is below the "
                f"{tag_floor:.2f}x floor",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"minimum {tag} speedup {worst:.2f}x (floor {tag_floor:.2f}x)"
            )
    return 1 if failed else 0


def _cmd_curves(args: argparse.Namespace) -> int:
    families = _platform_families()
    if args.platform not in families:
        print(
            f"unknown platform {args.platform!r}; available:\n  "
            + "\n  ".join(sorted(families)),
            file=sys.stderr,
        )
        return 2
    curves = families[args.platform]()
    metrics = compute_metrics(curves)
    print(f"{curves.name}")
    for curve in curves:
        points = " ".join(
            f"({b:.1f},{l:.0f})"
            for b, l in zip(curve.bandwidth_gbps, curve.latency_ns)
        )
        print(f"  r={curve.read_ratio:.2f}: {points}")
    print(
        f"unloaded {metrics.unloaded_latency_ns:.0f} ns, max latency "
        f"{metrics.max_latency_min_ns:.0f}-{metrics.max_latency_max_ns:.0f} ns"
    )
    if args.csv:
        curves.to_csv(args.csv)
        print(f"curves written to {args.csv}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    timing = preset(args.preset)
    # declared as a scenario so the CLI goes through the same
    # materialization seam as every experiment (no direct harness
    # construction here)
    scenario = Scenario(
        name=f"{timing.name}x{args.channels}",
        memory={
            "kind": "cycle-accurate",
            "params": {
                "timing": args.preset,
                "channels": args.channels,
                "write_queue_depth": 48,
            },
        },
        system=SystemConfig(cores=args.cores),
        sweep=MessBenchmarkConfig(
            store_fractions=(0.0, 0.5, 1.0),
            nop_counts=(0, 150, 600, 3000),
            warmup_ns=4000.0,
            measure_ns=10_000.0,
        ),
        theoretical_bandwidth_gbps=timing.channel_peak_gbps * args.channels,
        engine=engine_mod.resolve(args.engine),
    )
    bench = scenario.materialize().benchmark()
    with engine_mod.using(scenario.engine):
        curves = bench.run()
    metrics = compute_metrics(curves)
    for point in bench.points:
        print(
            f"  sf={point.store_fraction:.1f} nop={point.nop_count:5d}: "
            f"{point.bandwidth_gbps:6.1f} GB/s @ {point.latency_ns:6.1f} ns "
            f"(read ratio {point.measured_read_ratio:.2f})"
        )
    print(
        f"unloaded {metrics.unloaded_latency_ns:.0f} ns; saturated "
        f"{metrics.saturated_bw_min_pct:.0f}-{metrics.saturated_bw_max_pct:.0f}%"
    )
    if args.csv:
        curves.to_csv(args.csv)
        print(f"curves written to {args.csv}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mess reproduction: experiments, curves, characterization",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments").set_defaults(
        func=_cmd_list
    )

    run_parser = commands.add_parser(
        "run", help="run one or many experiments (parallel, cached)"
    )
    run_parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (see `repro list`)",
    )
    run_parser.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    run_parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help=(
            "worker processes (default 1: run inline; with --resume, "
            "default: the resumed run's job count)"
        ),
    )
    run_parser.add_argument("--scale", type=float, default=1.0)
    run_parser.add_argument(
        "--engine",
        choices=engine_mod.ENGINE_NAMES,
        default=None,
        help=(
            "execution engine: 'reference' (scalar, default) or "
            "'vectorized' (batched numpy, bit-identical results); "
            "overrides the engine field of selected scenarios"
        ),
    )
    run_parser.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="SCENARIO",
        help=(
            "scenario JSON file or preset name to run (repeatable; see "
            "`repro scenario list`)"
        ),
    )
    run_parser.add_argument(
        "--opt",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="experiment option (repeatable; single experiment only)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None, help="override the on-disk cache location"
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk cache entirely",
    )
    run_parser.add_argument(
        "--manifest",
        default=None,
        help="run-manifest path (default: run-manifest.json with --all)",
    )
    run_parser.add_argument("--csv", default=None)
    run_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="collect telemetry and write a Chrome trace-event file",
    )
    run_parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="collect telemetry and write a Prometheus text snapshot",
    )
    run_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "retry transient failures (crash/timeout/cache-error) up to "
            "N times with exponential backoff (default 0: no retries)"
        ),
    )
    run_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-experiment wall-clock deadline; attempts running longer "
            "are terminated and recorded (or retried) as timeouts"
        ),
    )
    run_parser.add_argument(
        "--resume",
        default=None,
        metavar="MANIFEST",
        help=(
            "re-run only the entries a previous run's manifest records "
            "as unfinished, then rewrite the merged manifest"
        ),
    )
    run_parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help=(
            "fault-plan JSON file injecting crashes, hangs, cache "
            "corruption or controller divergence (chaos testing)"
        ),
    )
    run_parser.set_defaults(func=_cmd_run)

    cache_parser = commands.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache_parser.add_argument("action", choices=("info", "clear"))
    cache_parser.add_argument(
        "--cache-dir", default=None, help="override the on-disk cache location"
    )
    cache_parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help=(
            "cache backend or comma-separated tier stack: dir, sqlite, "
            "memory, tiered (default: dir)"
        ),
    )
    cache_parser.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sqlite-tier entry TTL; older entries expire on read",
    )
    cache_parser.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="sqlite-tier high-water mark; oldest entries evict on write",
    )
    cache_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable `info` output with per-entry sizes",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    serve_parser = commands.add_parser(
        "serve",
        help="serve digest-keyed characterizations over HTTP",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8650,
        help="listen port (default 8650; 0 picks an ephemeral port)",
    )
    serve_parser.add_argument(
        "--backend",
        default="tiered",
        metavar="SPEC",
        help=(
            "cache backend or tier stack: dir, sqlite, memory, tiered "
            "(default: tiered = memory,dir)"
        ),
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, help="override the on-disk cache location"
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        metavar="N",
        help="concurrent scenario computations (default 4)",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="queued computations before rejecting with 429 (default 64)",
    )
    serve_parser.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-request deadline; exceeded requests get 504 (default 60)",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "boot a cluster: N shard processes on ports PORT+1..PORT+N "
            "behind a digest-range router on PORT (default 0 = one process)"
        ),
    )
    serve_parser.add_argument(
        "--hedge",
        action="store_true",
        help="with --shards: race a second shard after the p99-derived delay",
    )
    serve_parser.add_argument(
        "--warm",
        default=None,
        metavar="MANIFEST",
        help="pre-seed the cache from a `repro run` manifest before serving",
    )
    serve_parser.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sqlite-tier entry TTL; older entries expire on read",
    )
    serve_parser.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="sqlite-tier high-water mark; oldest entries evict on write",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    route_parser = commands.add_parser(
        "route",
        help="route requests across running serve shards by digest range",
    )
    route_parser.add_argument(
        "--shard",
        action="append",
        required=True,
        metavar="URL",
        help="shard base URL; repeat once per shard (order fixes the ring)",
    )
    route_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    route_parser.add_argument(
        "--port",
        type=int,
        default=8650,
        metavar="P",
        help="listen port (default 8650; 0 picks an ephemeral port)",
    )
    route_parser.add_argument(
        "--hedge",
        action="store_true",
        help="race a second shard after the hedge delay",
    )
    route_parser.add_argument(
        "--hedge-delay-ms",
        type=float,
        default=None,
        metavar="MS",
        help="fixed hedge delay (default: derived from observed p99)",
    )
    route_parser.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        metavar="N",
        help="concurrent forwarded requests (default 32)",
    )
    route_parser.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        metavar="N",
        help="waiting requests before rejecting with 429 (default 256)",
    )
    route_parser.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-request deadline; exceeded requests get 504 (default 60)",
    )
    route_parser.set_defaults(func=_cmd_route)

    loadgen_parser = commands.add_parser(
        "loadgen",
        help="benchmark a characterization service with a replayable load",
    )
    loadgen_parser.add_argument(
        "--scenarios",
        type=int,
        default=6,
        metavar="K",
        help="unique scenario digests in the request mix (default 6)",
    )
    loadgen_parser.add_argument(
        "--requests",
        type=int,
        default=120,
        metavar="N",
        help="requests per pass (default 120)",
    )
    loadgen_parser.add_argument(
        "--clients",
        type=int,
        default=12,
        metavar="C",
        help="concurrent keep-alive clients (default 12)",
    )
    loadgen_parser.add_argument(
        "--passes",
        type=int,
        default=2,
        metavar="P",
        help="replay passes; later passes measure the cache path (default 2)",
    )
    loadgen_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="schedule seed (same seed -> identical request stream)",
    )
    loadgen_parser.add_argument(
        "--backend",
        default="tiered",
        metavar="SPEC",
        help="in-process server's cache backend (ignored with --url)",
    )
    loadgen_parser.add_argument(
        "--cache-dir",
        default=None,
        help="in-process server's cache location (ignored with --url)",
    )
    loadgen_parser.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        metavar="N",
        help="in-process server's compute concurrency (ignored with --url)",
    )
    loadgen_parser.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="replay against a running `repro serve` instead",
    )
    loadgen_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "replay against a private in-process N-shard cluster "
            "(default 0 = single in-process server)"
        ),
    )
    loadgen_parser.add_argument(
        "--hedge",
        action="store_true",
        help="with --shards: enable hedged reads on the router",
    )
    loadgen_parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the full loadgen report to PATH",
    )
    loadgen_parser.add_argument(
        "--assert-hit-ratio",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if the final pass's hit ratio is below X",
    )
    loadgen_parser.add_argument(
        "--assert-p99-ms",
        type=float,
        default=None,
        metavar="MS",
        help="exit 1 if the final pass's p99 latency exceeds MS",
    )
    loadgen_parser.set_defaults(func=_cmd_loadgen)

    telemetry_parser = commands.add_parser(
        "telemetry", help="summarize exported telemetry files"
    )
    telemetry_parser.add_argument("action", choices=("summarize",))
    telemetry_parser.add_argument("path", metavar="PATH")
    telemetry_parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    telemetry_parser.set_defaults(func=_cmd_telemetry)

    check_parser = commands.add_parser(
        "check", help="run the project-specific static-analysis pass"
    )
    check_parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to check (default: the repro package)",
    )
    check_parser.add_argument(
        "--rules",
        action="append",
        default=[],
        metavar="IDS",
        help="comma-separated rule ids to run (repeatable; default: all)",
    )
    check_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="findings output format (sarif = SARIF 2.1.0 for code scanning)",
    )
    check_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rule ids and exit",
    )
    check_parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="compare findings against an accepted-findings baseline; "
        "only new findings fail the run",
    )
    check_parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="snapshot the current findings as the accepted baseline and exit 0",
    )
    check_parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report findings only for files changed relative to --since "
        "(the whole tree is still analyzed, so cross-file rules stay sound)",
    )
    check_parser.add_argument(
        "--since",
        metavar="REF",
        default=None,
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    check_parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for file analysis (0 = auto)",
    )
    check_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-digest incremental analysis cache",
    )
    check_parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="analysis cache location (default: .repro-cache/checks)",
    )
    check_parser.set_defaults(func=_cmd_check)

    scenario_parser = commands.add_parser(
        "scenario", help="list, show, validate or digest scenarios"
    )
    scenario_parser.add_argument(
        "action", choices=("list", "show", "validate", "digest")
    )
    scenario_parser.add_argument(
        "refs",
        nargs="*",
        metavar="SCENARIO",
        help="preset name or scenario JSON file",
    )
    scenario_parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="scale factor applied when building preset scenarios",
    )
    scenario_parser.add_argument(
        "--opt",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "dotted-path scenario override applied before the action "
            "(e.g. cache.policy=plru, system.cores=8); repeatable"
        ),
    )
    scenario_parser.set_defaults(func=_cmd_scenario)

    bench_parser = commands.add_parser(
        "bench",
        help="time registered perf benches under both engines",
    )
    bench_parser.add_argument(
        "--filter",
        default=None,
        metavar="SUBSTR[,SUBSTR...]",
        help=(
            "run benches whose name or tag matches any comma-separated "
            "term (e.g. 'curves' or 'curves,hierarchy')"
        ),
    )
    bench_parser.add_argument(
        "--engine",
        choices=("reference", "vectorized", "both"),
        default="both",
        help="engine(s) to time (default: both, reporting the speedup)",
    )
    bench_parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="timing repetitions per engine; best-of-N is reported",
    )
    bench_parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the bench payload (see repro.bench.perf) to PATH",
    )
    bench_parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit 1 if any bench's vectorized speedup is below X "
            "(benches covered by a --tag-floor are exempt)"
        ),
    )
    bench_parser.add_argument(
        "--tag-floor",
        action="append",
        default=[],
        metavar="TAG=X",
        help=(
            "per-tag speedup floor (e.g. hierarchy=0.5) for benches "
            "whose kernels are scalar under both engines; repeatable"
        ),
    )
    bench_parser.add_argument(
        "--list", action="store_true", help="list matching benches and exit"
    )
    bench_parser.set_defaults(func=_cmd_bench)

    curves_parser = commands.add_parser(
        "curves", help="print a preset platform's curve family"
    )
    curves_parser.add_argument("platform")
    curves_parser.add_argument("--csv", default=None)
    curves_parser.set_defaults(func=_cmd_curves)

    char_parser = commands.add_parser(
        "characterize", help="Mess-benchmark a simulated memory system"
    )
    char_parser.add_argument(
        "--preset", default="DDR4-2666", choices=sorted(PRESETS)
    )
    char_parser.add_argument("--channels", type=int, default=3)
    char_parser.add_argument("--cores", type=int, default=8)
    char_parser.add_argument(
        "--engine", choices=engine_mod.ENGINE_NAMES, default=None
    )
    char_parser.add_argument("--csv", default=None)
    char_parser.set_defaults(func=_cmd_characterize)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except MessError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); not our error
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
