"""Shared memory-request types.

Kept in a leaf module (no intra-package imports beyond ``units``) so the
DRAM substrate and the memory-model zoo can both depend on the request
vocabulary without importing each other.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .units import CACHE_LINE_BYTES


class AccessType(enum.Enum):
    """Direction of a memory operation as seen by the memory system."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


@dataclass(frozen=True)
class MemoryRequest:
    """One cache-line request arriving at the memory system.

    Attributes
    ----------
    address:
        Physical byte address; models that care about locality (row
        buffers, bank mapping) decode it, others ignore it.
    access_type:
        Read or write, after the cache hierarchy: a CPU store under
        write-allocate arrives here first as a READ (the line fill) and
        later as a WRITE (the dirty eviction).
    issue_time_ns:
        Simulation time at which the request reaches the memory system.
        Models may assume calls arrive in non-decreasing issue time.
    size_bytes:
        Transfer size; always one cache line in this reproduction.
    """

    address: int
    access_type: AccessType
    issue_time_ns: float
    size_bytes: int = CACHE_LINE_BYTES
