"""Declarative memory-model specs: ``{"kind": ..., "params": {...}}``.

Every memory model in the zoo is constructible from a JSON-typed spec,
so a scenario file can select any backend the experiments use — the
cycle-level substrate, the flawed-simulator analogs, the queueing
models, the device models, or the Mess simulator itself (whose curves
are in turn a spec: a platform reference, a special family, or inline
curve data).

Parameter names are the model constructors' keyword arguments,
introspected rather than duplicated; adding a constructor parameter
automatically extends the spec surface. Two parameter types get
resolution on top of plain JSON values:

- DRAM timings (``timing`` / ``backend_timing``) accept a preset name,
  ``{"preset": name}`` or a full timing object
  (:meth:`repro.dram.timing.DramTiming.from_spec`);
- the Mess simulator's ``curves`` accept ``{"platform": <Table I
  name>}``, ``{"special": "cxl"|"optane"|"remote-socket"}`` or an
  inline family dict (:meth:`repro.core.family.CurveFamily.from_dict`).
"""

from __future__ import annotations

import inspect
from typing import Callable, Mapping

from ..core.family import CurveFamily
from ..core.simulator import MessMemorySimulator
from ..dram.timing import DramTiming
from ..errors import ConfigurationError, MessError
from ..memmodels.base import MemoryModel
from ..memmodels.cxl import CxlExpanderModel
from ..memmodels.cycle_accurate import CycleAccurateModel
from ..memmodels.fixed import FixedLatencyModel
from ..memmodels.flawed import DRAMsim3Analog, Ramulator2Analog, RamulatorAnalog
from ..memmodels.internal_ddr import InternalDdrModel
from ..memmodels.md1 import MD1QueueModel
from ..memmodels.optane import OptaneModel
from ..memmodels.remote_socket import RemoteSocketModel
from ..memmodels.simple_bw import SimpleBandwidthModel

#: Spec kind -> model constructor. Kind strings are the vocabulary of
#: scenario files; constructors define the parameter vocabulary.
MEMORY_KINDS: dict[str, Callable[..., MemoryModel]] = {
    "cycle-accurate": CycleAccurateModel,
    "fixed-latency": FixedLatencyModel,
    "md1": MD1QueueModel,
    "internal-ddr": InternalDdrModel,
    "gem5-simple": SimpleBandwidthModel,
    "dramsim3-analog": DRAMsim3Analog,
    "ramulator-analog": RamulatorAnalog,
    "ramulator2-analog": Ramulator2Analog,
    "cxl-expander": CxlExpanderModel,
    "optane": OptaneModel,
    "remote-socket": RemoteSocketModel,
    "mess": MessMemorySimulator,
}

#: Parameters resolved through :meth:`DramTiming.from_spec`.
_TIMING_PARAMS = frozenset({"timing", "backend_timing"})

#: The Mess simulator's family parameter, spelled ``curves`` in specs.
_CURVES_PARAM = "curves"

#: Constructor parameter backing ``curves`` for the "mess" kind.
_FAMILY_CTOR_PARAM = "family"


def memory_kinds() -> list[str]:
    """Every registered memory-model kind, sorted."""
    return sorted(MEMORY_KINDS)


def _constructor(kind: str) -> Callable[..., MemoryModel]:
    try:
        return MEMORY_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown memory kind {kind!r}; available: {memory_kinds()}"
        ) from None


def allowed_params(kind: str) -> list[str]:
    """Spec parameter names accepted by one memory kind."""
    signature = inspect.signature(_constructor(kind).__init__)
    names = [name for name in signature.parameters if name != "self"]
    if kind == "mess":
        names = [
            _CURVES_PARAM if name == _FAMILY_CTOR_PARAM else name
            for name in names
        ]
    return names


def resolve_curves(spec: object, where: str = "memory.params.curves") -> CurveFamily:
    """Resolve a curve-source spec into a :class:`CurveFamily`."""
    # imported here: presets synthesize families on demand and pull in
    # the whole platform layer, which scenario validation alone may skip
    from ..platforms import presets

    if isinstance(spec, CurveFamily):
        return spec
    if not isinstance(spec, Mapping):
        raise ConfigurationError(
            f"{where}: expected a curve source object, got "
            f"{type(spec).__name__}"
        )
    if set(spec) == {"platform"}:
        return presets.family(presets.platform(str(spec["platform"])))
    if set(spec) == {"special"}:
        specials = {
            "cxl": presets.cxl_expander_family,
            "optane": presets.optane_family,
            "remote-socket": presets.remote_socket_family,
        }
        name = str(spec["special"])
        if name not in specials:
            raise ConfigurationError(
                f"{where}.special: unknown family {name!r}; "
                f"available: {sorted(specials)}"
            )
        return specials[name]()
    if "curves" in spec:
        return CurveFamily.from_dict(spec)
    raise ConfigurationError(
        f"{where}: expected {{'platform': name}}, {{'special': name}} or "
        "an inline family object"
    )


def canonical_curves_spec(spec: object) -> object:
    """Canonical encoding of a curve source for digests and files.

    References stay references (their synthesis is deterministic);
    family objects become their full inline dict, so a measured family
    wired into a scenario digests by value.
    """
    if isinstance(spec, CurveFamily):
        return spec.to_dict()
    return spec


def canonical_memory_spec(kind: str, params: Mapping) -> dict:
    """Validated, canonical ``{"kind", "params"}`` encoding of one spec.

    Timing parameters expand to full timing objects so the digest
    depends on timing *values*, never on preset spelling.
    """
    constructor = _constructor(kind)
    if not isinstance(params, Mapping):
        raise ConfigurationError(
            f"memory.params: expected an object, got {type(params).__name__}"
        )
    allowed = allowed_params(kind)
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"memory kind {kind!r}: unknown parameter(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )
    if kind == "mess" and _CURVES_PARAM not in params:
        raise ConfigurationError(
            "memory kind 'mess' requires a 'curves' parameter"
        )
    canonical: dict = {}
    for name in sorted(params):
        value = params[name]
        if name in _TIMING_PARAMS:
            canonical[name] = DramTiming.from_spec(
                value, where=f"memory.params.{name}"
            ).to_spec()
        elif name == _CURVES_PARAM:
            canonical[name] = canonical_curves_spec(value)
        else:
            canonical[name] = value
    del constructor
    return {"kind": kind, "params": canonical}


def build_memory(kind: str, params: Mapping) -> MemoryModel:
    """Build one memory model instance from a validated spec."""
    constructor = _constructor(kind)
    spec = canonical_memory_spec(kind, params)
    kwargs: dict[str, object] = {}
    for name, value in spec["params"].items():
        if name in _TIMING_PARAMS:
            kwargs[name] = DramTiming.from_spec(value)
        elif name == _CURVES_PARAM:
            kwargs[_FAMILY_CTOR_PARAM] = resolve_curves(params[_CURVES_PARAM])
        else:
            kwargs[name] = value
    return constructor(**kwargs)


def memory_factory(
    kind: str, params: Mapping | None = None
) -> Callable[[], MemoryModel]:
    """A zero-argument factory building fresh models from one spec.

    The spec is validated once, up front; curve sources are resolved
    once and shared (families are immutable), while the model itself is
    rebuilt per call so no queue state leaks between measurements.
    """
    params = dict(params or {})
    constructor = _constructor(kind)
    spec = canonical_memory_spec(kind, params)
    resolved: dict[str, object] = {}
    for name, value in spec["params"].items():
        if name in _TIMING_PARAMS:
            resolved[name] = DramTiming.from_spec(value)
        elif name == _CURVES_PARAM:
            resolved[_FAMILY_CTOR_PARAM] = resolve_curves(params[_CURVES_PARAM])
        else:
            resolved[name] = value

    def factory() -> MemoryModel:
        return constructor(**resolved)

    # validate parameter values eagerly: a scenario with a bad latency
    # should fail at load, not ten sweeps into a run
    factory()
    return factory


def validate_memory_spec(kind: str, params: Mapping) -> list[str]:
    """Problems with one memory spec; empty means it builds."""
    try:
        memory_factory(kind, params)
    except MessError as exc:
        return [str(exc)]
    return []


def default_theoretical_gbps(kind: str, params: Mapping) -> float | None:
    """Best-effort theoretical peak bandwidth implied by a memory spec.

    Used when a scenario does not pin ``theoretical_bandwidth_gbps``
    explicitly; returns ``None`` when the spec does not imply one.
    """
    params = dict(params or {})
    if kind == "cycle-accurate":
        timing = DramTiming.from_spec(params.get("timing", "DDR4-2666"))
        signature = inspect.signature(CycleAccurateModel.__init__)
        default_channels = signature.parameters["channels"].default
        channels = int(params.get("channels", default_channels))
        return timing.channel_peak_gbps * channels
    if kind == "mess":
        if _CURVES_PARAM in params:
            return resolve_curves(params[_CURVES_PARAM]).theoretical_bandwidth_gbps
        return None
    for name in ("peak_bandwidth_gbps", "theoretical_gbps"):
        if name in params:
            return float(params[name])  # type: ignore[arg-type]
        signature = inspect.signature(_constructor(kind).__init__)
        if name in signature.parameters:
            default = signature.parameters[name].default
            if isinstance(default, (int, float)):
                return float(default)
    return None
