"""The Scenario: one declarative description of a complete run.

A scenario names everything a run depends on — the CPU substrate, the
memory model and its parameters, the characterization sweep, and the
workload — in one canonically-serializable object. Its
:meth:`Scenario.digest` is *the* cache identity: the runner keys result
entries on it, the characterization cache folds it in, and two
scenarios that digest equal are guaranteed to describe the same run.

Two workload kinds exist:

- ``{"kind": "characterize"}`` — run the Mess benchmark on the
  scenario's system + memory and report the measured curve family.
  This is the kind scenario files usually declare, and the kind every
  experiment module uses internally (via :mod:`repro.scenario.presets`)
  to build its substrates.
- ``{"kind": "experiment", "experiment_id": ..., "scale": ...,
  "options": {...}}`` — delegate to a registered experiment module.
  The system/memory/sweep sections must be absent: the experiment owns
  its machines (each one itself declared as characterize scenarios).
  This is the spelling the runner uses to key ``repro run fig4`` runs.

Scenario files are JSON objects carrying the ``"repro_scenario": 1``
format marker; :func:`load_scenario` reads one from disk.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Callable, Mapping

from .. import engine as engine_mod
from ..bench.harness import MessBenchmark, MessBenchmarkConfig
from ..core.family import CurveFamily
from ..cpu.cachemodel import canonical_cache_spec, validate_cache_model
from ..cpu.system import System, SystemConfig
from ..errors import ConfigurationError, MessError
from ..memmodels.base import MemoryModel
from ..specs import spec_digest
from . import memory as memory_specs
from .options import apply_overrides

#: Top-level marker key identifying a JSON object as a scenario file.
FORMAT_KEY = "repro_scenario"

#: Current scenario format version; bump on incompatible layout change.
FORMAT_VERSION = 1

_WORKLOAD_KINDS = ("characterize", "experiment")


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A validated, digestable description of one run.

    Construct directly, via :meth:`from_spec`, via
    :meth:`for_experiment`, or through the preset helpers in
    :mod:`repro.scenario.presets`. The instance is frozen; derive
    variants with :meth:`with_overrides`.
    """

    name: str
    workload: Mapping = dataclasses.field(
        default_factory=lambda: {"kind": "characterize"}
    )
    system: SystemConfig | None = None
    #: ``{"kind": ..., "params": {...}}`` memory-model spec
    #: (see :mod:`repro.scenario.memory`), or None for experiment
    #: workloads.
    memory: Mapping | None = None
    sweep: MessBenchmarkConfig | None = None
    theoretical_bandwidth_gbps: float | None = None
    #: Execution engine (see :mod:`repro.engine`): ``"reference"`` or
    #: ``"vectorized"``. Both produce bit-identical results; the spec
    #: only records a non-default choice, so existing digests are
    #: unchanged.
    engine: str = engine_mod.DEFAULT_ENGINE
    description: str = ""

    def __post_init__(self) -> None:
        # characterize scenarios always carry an explicit machine, so
        # their digest is value-canonical rather than default-shaped
        if self.workload_kind == "characterize":
            if self.system is None:
                object.__setattr__(self, "system", SystemConfig())
            if self.sweep is None:
                object.__setattr__(self, "sweep", MessBenchmarkConfig())

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def workload_kind(self) -> str:
        kind = self.workload.get("kind") if isinstance(self.workload, Mapping) else None
        return str(kind) if kind is not None else ""

    def to_spec(self) -> dict:
        """Canonical JSON-typed encoding, suitable for a scenario file."""
        spec: dict = {
            FORMAT_KEY: FORMAT_VERSION,
            "name": self.name,
            "workload": _canonical_workload(self.workload),
        }
        if self.description:
            spec["description"] = self.description
        if self.system is not None:
            spec["system"] = self.system.to_spec()
        if self.memory is not None:
            spec["memory"] = memory_specs.canonical_memory_spec(
                str(self.memory.get("kind")), self.memory.get("params") or {}
            )
        if self.sweep is not None:
            spec["sweep"] = self.sweep.to_spec()
        if self.theoretical_bandwidth_gbps is not None:
            spec["theoretical_bandwidth_gbps"] = float(
                self.theoretical_bandwidth_gbps
            )
        if self.engine != engine_mod.DEFAULT_ENGINE:
            spec["engine"] = self.engine
        return spec

    def digest(self) -> str:
        """Stable content digest — the run's cache identity.

        The description is cosmetic and excluded; everything else
        (including the name, which labels result rows) participates.
        Canonicalization makes the digest insensitive to key order and
        to spelling (timing presets expand to their values first).
        """
        payload = self.to_spec()
        payload.pop("description", None)
        return spec_digest(payload)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, payload: Mapping, where: str = "scenario") -> "Scenario":
        """Build a scenario from a spec dict, strictly validated."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"{where}: expected an object, got {type(payload).__name__}"
            )
        version = payload.get(FORMAT_KEY)
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"{where}: expected {FORMAT_KEY!r}: {FORMAT_VERSION}, "
                f"got {version!r}"
            )
        known = {
            FORMAT_KEY,
            "name",
            "description",
            "workload",
            "system",
            "memory",
            "sweep",
            "theoretical_bandwidth_gbps",
            "engine",
            "cache",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"{where}: unknown key(s) {unknown}; known: {sorted(known)}"
            )
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"{where}.name: required non-empty string")
        workload = payload.get("workload", {"kind": "characterize"})
        if not isinstance(workload, Mapping):
            raise ConfigurationError(f"{where}.workload: expected an object")
        system = payload.get("system")
        cache_sugar = payload.get("cache")
        if cache_sugar is not None:
            # top-level shorthand: fold onto system.cache (preset name,
            # preset + overrides, or field overrides over the current
            # model). The canonical spelling always lives inside the
            # system section, so the digest is spelling-insensitive.
            if system is not None and not isinstance(system, Mapping):
                raise ConfigurationError(f"{where}.system: expected an object")
            folded = dict(system) if isinstance(system, Mapping) else {}
            existing = folded.get("cache")
            label = f"{where}.cache"
            if (
                existing is not None
                and isinstance(cache_sugar, Mapping)
                and "preset" not in cache_sugar
            ):
                merged = canonical_cache_spec(
                    existing, where=f"{where}.system.cache"
                )
                merged.update(
                    {str(key): value for key, value in cache_sugar.items()}
                )
                folded["cache"] = canonical_cache_spec(merged, where=label)
            else:
                folded["cache"] = canonical_cache_spec(cache_sugar, where=label)
            system = folded
        memory = payload.get("memory")
        sweep = payload.get("sweep")
        theoretical = payload.get("theoretical_bandwidth_gbps")
        if theoretical is not None and not isinstance(
            theoretical, (int, float)
        ):
            raise ConfigurationError(
                f"{where}.theoretical_bandwidth_gbps: expected a number"
            )
        engine_name = payload.get("engine", engine_mod.DEFAULT_ENGINE)
        if not isinstance(engine_name, str):
            raise ConfigurationError(f"{where}.engine: expected a string")
        if memory is not None:
            if not isinstance(memory, Mapping) or "kind" not in memory:
                raise ConfigurationError(
                    f"{where}.memory: expected {{'kind': ..., 'params': ...}}"
                )
            extra = sorted(set(memory) - {"kind", "params"})
            if extra:
                raise ConfigurationError(
                    f"{where}.memory: unknown key(s) {extra}"
                )
        scenario = cls(
            name=name,
            workload=_canonical_workload(workload, where=f"{where}.workload"),
            system=(
                SystemConfig.from_spec(system, where=f"{where}.system")
                if system is not None
                else None
            ),
            memory=dict(memory) if memory is not None else None,
            sweep=(
                MessBenchmarkConfig.from_spec(sweep, where=f"{where}.sweep")
                if sweep is not None
                else None
            ),
            theoretical_bandwidth_gbps=(
                float(theoretical) if theoretical is not None else None
            ),
            engine=engine_name,
            description=str(payload.get("description", "")),
        )
        problems = scenario.validate()
        if problems:
            raise ConfigurationError(f"{where}: " + "; ".join(problems))
        return scenario

    @classmethod
    def for_experiment(
        cls,
        experiment_id: str,
        scale: float = 1.0,
        options: Mapping | None = None,
        engine: str | None = None,
    ) -> "Scenario":
        """The scenario describing one registered-experiment run.

        This is what the runner digests to key the result cache: the
        experiment id, the scale, the full option set and (when
        non-default) the engine, nothing else.
        """
        return cls(
            name=f"experiment:{experiment_id}",
            workload={
                "kind": "experiment",
                "experiment_id": str(experiment_id),
                "scale": float(scale),
                "options": dict(options or {}),
            },
            engine=engine_mod.resolve(engine),
        )

    def with_overrides(self, assignments: Mapping[str, object]) -> "Scenario":
        """A new scenario with dotted-path overrides applied.

        ``{"system.cores": 8}`` adjusts the system section; the result
        re-validates from scratch, so an override cannot produce a
        scenario that a file could not.
        """
        if not assignments:
            return self
        payload = self.to_spec()
        # ``cache.*`` overrides target shorthand sections the canonical
        # spec omits when default — seed empty objects so dotted paths
        # have something to land in.
        keys = [str(key) for key in assignments]
        if any(key == "cache" or key.startswith("cache.") for key in keys):
            payload.setdefault("cache", {})
        if any(key.startswith("system.cache") for key in keys):
            system_section = payload.get("system")
            if isinstance(system_section, dict):
                system_section.setdefault("cache", {})
        return Scenario.from_spec(apply_overrides(payload, assignments))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> list[str]:
        """All problems with this scenario; empty means runnable."""
        problems: list[str] = []
        if not self.name:
            problems.append("name: must be non-empty")
        if self.engine not in engine_mod.ENGINE_NAMES:
            problems.append(
                f"engine: expected one of {list(engine_mod.ENGINE_NAMES)}, "
                f"got {self.engine!r}"
            )
        kind = self.workload_kind
        if kind not in _WORKLOAD_KINDS:
            problems.append(
                f"workload.kind: expected one of {list(_WORKLOAD_KINDS)}, "
                f"got {kind!r}"
            )
            return problems
        if kind == "characterize":
            if self.system is not None:
                problems.extend(
                    validate_cache_model(
                        self.system.cache, self.system.hierarchy
                    )
                )
            if self.memory is None:
                problems.append("memory: required for characterize workloads")
            else:
                problems.extend(
                    memory_specs.validate_memory_spec(
                        str(self.memory.get("kind")),
                        self.memory.get("params") or {},
                    )
                )
            extra = sorted(
                set(self.workload) - {"kind"}
            )
            if extra:
                problems.append(
                    f"workload: unknown key(s) {extra} for characterize"
                )
        else:
            problems.extend(self._validate_experiment_workload())
            for section, value in (
                ("system", self.system),
                ("memory", self.memory),
                ("sweep", self.sweep),
            ):
                if value is not None:
                    problems.append(
                        f"{section}: must be absent for experiment workloads "
                        "(the experiment declares its own machines)"
                    )
            if self.theoretical_bandwidth_gbps is not None:
                problems.append(
                    "theoretical_bandwidth_gbps: must be absent for "
                    "experiment workloads"
                )
        return problems

    def _validate_experiment_workload(self) -> list[str]:
        problems: list[str] = []
        extra = sorted(
            set(self.workload) - {"kind", "experiment_id", "scale", "options"}
        )
        if extra:
            problems.append(f"workload: unknown key(s) {extra} for experiment")
        experiment_id = self.workload.get("experiment_id")
        if not isinstance(experiment_id, str) or not experiment_id:
            problems.append("workload.experiment_id: required non-empty string")
            return problems
        scale = self.workload.get("scale", 1.0)
        if isinstance(scale, bool) or not isinstance(scale, (int, float)):
            problems.append("workload.scale: expected a number")
        elif scale <= 0:
            problems.append(f"workload.scale: must be positive, got {scale}")
        options = self.workload.get("options", {})
        if not isinstance(options, Mapping):
            problems.append("workload.options: expected an object")
            return problems
        # imported lazily: the registry imports every experiment module,
        # which imports the scenario presets — cycle if done at top level
        from ..experiments import registry

        try:
            registry.get_spec(experiment_id)
            registry.validate_options(experiment_id, dict(options))
        except MessError as exc:
            problems.append(str(exc))
        return problems

    # ------------------------------------------------------------------
    # Materialization and execution
    # ------------------------------------------------------------------

    def materialize(self) -> "MaterializedScenario":
        """Build the runnable pieces of a characterize scenario.

        This is the single factory through which every experiment (and
        the CLI) obtains systems, memory factories and benchmarks — the
        one place scenario specs turn into simulation objects.
        """
        if self.workload_kind != "characterize":
            raise ConfigurationError(
                f"scenario {self.name!r}: only characterize scenarios "
                f"materialize (got workload kind {self.workload_kind!r})"
            )
        problems = self.validate()
        if problems:
            raise ConfigurationError(
                f"scenario {self.name!r}: " + "; ".join(problems)
            )
        assert self.memory is not None and self.system is not None
        assert self.sweep is not None
        kind = str(self.memory.get("kind"))
        params = self.memory.get("params") or {}
        factory = memory_specs.memory_factory(kind, params)
        theoretical = self.theoretical_bandwidth_gbps
        if theoretical is None:
            theoretical = memory_specs.default_theoretical_gbps(kind, params)
        return MaterializedScenario(
            scenario=self,
            system_config=self.system,
            memory_factory=factory,
            sweep=self.sweep,
            theoretical_bandwidth_gbps=theoretical,
        )

    def run(self):
        """Execute the scenario and return an ``ExperimentResult``.

        Characterize scenarios run the Mess benchmark (through the
        characterization cache when one is active) and tabulate the
        family; experiment scenarios delegate to the registry. Either
        way the scenario's engine is active for the duration, so the
        ``engine`` field is authoritative for everything run through
        here.
        """
        # lazy: experiments.base -> telemetry only, but the registry
        # pulls in every experiment module
        from ..experiments import registry
        from ..experiments.base import ExperimentResult

        if self.workload_kind == "experiment":
            options = dict(self.workload.get("options", {}))
            with engine_mod.using(self.engine):
                return registry.run_experiment(
                    str(self.workload.get("experiment_id")),
                    scale=float(self.workload.get("scale", 1.0)),
                    **options,
                )
        with engine_mod.using(self.engine):
            family = self.materialize().benchmark().run()
        result = ExperimentResult(
            experiment_id=f"scenario:{self.name}",
            title=self.description or f"Scenario {self.name}",
            columns=["series", "read_ratio", "bandwidth_gbps", "latency_ns"],
        )
        _tabulate_family(result, family)
        result.note(f"scenario digest {self.digest()[:16]}")
        return result


@dataclasses.dataclass
class MaterializedScenario:
    """The runnable pieces built from one characterize scenario."""

    scenario: Scenario
    system_config: SystemConfig
    memory_factory: Callable[[], MemoryModel]
    sweep: MessBenchmarkConfig
    theoretical_bandwidth_gbps: float | None

    def build_system(self) -> System:
        """A fresh system wired to a fresh memory model."""
        return System(self.system_config, self.memory_factory())

    def benchmark(self) -> MessBenchmark:
        """The Mess benchmark for this scenario.

        The characterization cache key is the scenario digest — one
        identity from the file all the way to the cache entry.
        """
        from ..bench import harness as harness_mod

        with harness_mod._sanctioned_construction():
            return MessBenchmark(
                system_config=self.system_config,
                memory_factory=self.memory_factory,
                config=self.sweep,
                name=self.scenario.name,
                theoretical_bandwidth_gbps=self.theoretical_bandwidth_gbps,
                cache_key=f"scenario:{self.scenario.digest()}",
            )

    def characterize(self) -> CurveFamily:
        """Run the benchmark and return the measured curve family."""
        return self.benchmark().run()


def _canonical_workload(workload: Mapping, where: str = "workload") -> dict:
    kind = workload.get("kind")
    if not isinstance(kind, str):
        raise ConfigurationError(f"{where}.kind: required string")
    canonical: dict = {"kind": kind}
    if kind == "experiment":
        if "experiment_id" in workload:
            canonical["experiment_id"] = workload["experiment_id"]
        canonical["scale"] = float(workload.get("scale", 1.0))
        options = workload.get("options", {})
        if isinstance(options, Mapping):
            options = {str(key): options[key] for key in sorted(options)}
        canonical["options"] = options
    else:
        for key in workload:
            if key != "kind":
                canonical[key] = workload[key]
    return canonical


def _tabulate_family(result, family: CurveFamily) -> None:
    for curve in family:
        for bandwidth, latency in zip(curve.bandwidth_gbps, curve.latency_ns):
            result.add(
                series=family.name,
                read_ratio=curve.read_ratio,
                bandwidth_gbps=bandwidth,
                latency_ns=latency,
            )


def load_scenario(path: str | Path) -> Scenario:
    """Read and validate a scenario file from disk."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read scenario {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid JSON: {exc}") from exc
    return Scenario.from_spec(payload, where=str(path))
