"""Named scenario presets: the benchmark machines the experiments share.

The simulator-facing experiments (Figures 4-14, OpenPiton, Optane) all
characterize memory models on the same class of machine: a multi-core
out-of-order system with a small three-level hierarchy, running the
Mess benchmark sweep sized by the experiment scale factor. This module
declares those machines as :class:`~repro.scenario.core.Scenario`
values — the only place benchmark system shapes are defined — and
registers the handful of named substrates the paper's figures keep
coming back to.

``repro scenario list`` shows the registry; ``preset_scenario(name)``
returns a fresh scenario for one entry; :func:`substrate` builds
one-off cycle-accurate substrates for experiments that sweep parameters
(channel counts, write-queue depths) beyond the named set.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

from ..bench.harness import MessBenchmarkConfig
from ..cpu.cache import CacheConfig, HierarchyConfig
from ..cpu.cachemodel import CacheModelSpec, canonical_cache_spec
from ..cpu.system import SystemConfig
from ..errors import ConfigurationError
from ..units import scaled
from .core import Scenario

#: Cache hierarchy used by the simulated benchmark systems. Smaller
#: than the real Skylake LLC so working sets and warmups stay tractable
#: in pure Python; the arrays used by every workload exceed it.
BENCH_HIERARCHY = HierarchyConfig(
    l1=CacheConfig(32 * 1024, 8, 1.5),
    l2=CacheConfig(256 * 1024, 8, 5.0),
    l3=CacheConfig(2 * 1024 * 1024, 16, 18.0),
    noc_latency_ns=45.0,
)


def resolve_cache_model(cache: object) -> CacheModelSpec:
    """Accept any cache-model spelling: spec, preset name, or mapping."""
    if isinstance(cache, CacheModelSpec):
        return cache
    return CacheModelSpec.from_spec(canonical_cache_spec(cache), where="cache")


def bench_system(
    cores: int = 24,
    mshrs: int = 12,
    in_order: bool = False,
    issue_gap_ns: float = 0.3,
    writeback_clean_lines: bool = False,
    cache: object | None = None,
) -> SystemConfig:
    """Standard benchmark machine: ``cores`` OoO cores, shared LLC.

    ``cache`` selects a non-default cache model (a
    :class:`~repro.cpu.cachemodel.CacheModelSpec`, a preset name, or a
    mapping of field overrides); ``None`` keeps the digest-neutral
    default.
    """
    return SystemConfig(
        cores=cores,
        hierarchy=BENCH_HIERARCHY,
        issue_gap_ns=issue_gap_ns,
        mshrs=mshrs,
        in_order=in_order,
        writeback_clean_lines=writeback_clean_lines,
        cache=(
            resolve_cache_model(cache) if cache is not None else CacheModelSpec()
        ),
    )


def bench_sweep(scale: float) -> MessBenchmarkConfig:
    """Mess-benchmark sweep sized by the experiment scale factor."""
    ratios = (0.0, 0.5, 1.0) if scale < 1.5 else (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    nops = (
        (0, 100, 320, 1000, 3000)
        if scale < 1.5
        else (0, 30, 100, 200, 320, 600, 1000, 1800, 3000, 6000)
    )
    return MessBenchmarkConfig(
        store_fractions=ratios,
        nop_counts=nops,
        warmup_ns=scaled(5000, min(scale, 2.0)),
        measure_ns=scaled(12000, min(scale, 2.0)),
        chase_array_bytes=16 * 1024 * 1024,
        traffic_array_bytes=8 * 1024 * 1024,
    )


def characterization(
    name: str,
    memory_kind: str,
    memory_params: Mapping | None = None,
    scale: float = 1.0,
    cores: int = 24,
    theoretical_bandwidth_gbps: float | None = None,
    description: str = "",
    system: SystemConfig | None = None,
    sweep: MessBenchmarkConfig | None = None,
    cache: object | None = None,
) -> Scenario:
    """A characterize scenario on the standard benchmark machine.

    ``cache`` selects a non-default cache model; it composes with an
    explicit ``system`` by replacing that system's cache field.
    """
    if system is None:
        system = bench_system(cores=cores, cache=cache)
    elif cache is not None:
        system = dataclasses.replace(system, cache=resolve_cache_model(cache))
    return Scenario(
        name=name,
        workload={"kind": "characterize"},
        system=system,
        memory={"kind": memory_kind, "params": dict(memory_params or {})},
        sweep=sweep if sweep is not None else bench_sweep(scale),
        theoretical_bandwidth_gbps=theoretical_bandwidth_gbps,
        description=description,
    )


def substrate(
    name: str,
    timing: object,
    channels: int,
    scale: float = 1.0,
    cores: int = 24,
    write_queue_depth: int = 48,
    theoretical_bandwidth_gbps: float | None = None,
    description: str = "",
) -> Scenario:
    """A cycle-accurate 'actual hardware' substrate scenario.

    ``timing`` is anything :meth:`DramTiming.from_spec` accepts — a
    preset name, a preset dict, a full timing dict or a DramTiming
    instance's spec. The theoretical bandwidth defaults from the timing
    and channel count.
    """
    from ..dram.timing import DramTiming

    if isinstance(timing, DramTiming):
        timing_spec: object = timing.to_spec()
    else:
        timing_spec = timing
    return characterization(
        name=name,
        memory_kind="cycle-accurate",
        memory_params={
            "timing": timing_spec,
            "channels": channels,
            "write_queue_depth": write_queue_depth,
        },
        scale=scale,
        cores=cores,
        theoretical_bandwidth_gbps=theoretical_bandwidth_gbps,
        description=description,
    )


#: Named substrate presets: name -> builder(scale) -> Scenario.
_PRESETS: dict[str, Callable[[float], Scenario]] = {
    "skylake-substrate": lambda scale: substrate(
        "skylake-substrate",
        "DDR4-2666",
        channels=6,
        scale=scale,
        # the paper's round Skylake number, not the exact 6-channel sum
        theoretical_bandwidth_gbps=128.0,
        description="Reference 'actual hardware': 6-channel DDR4-2666",
    ),
    "graviton-substrate": lambda scale: substrate(
        "graviton-substrate",
        "DDR5-4800",
        channels=8,
        scale=scale,
        description="Graviton 3-like hardware: 8-channel DDR5-4800",
    ),
    "graviton-substrate-2ch": lambda scale: substrate(
        "graviton-substrate-2ch",
        "DDR5-4800",
        channels=2,
        scale=scale,
        description="Constrained DDR5 machine: 2-channel DDR5-4800",
    ),
    "hbm-substrate": lambda scale: substrate(
        "hbm-substrate",
        "HBM2",
        channels=16,
        scale=scale,
        description="HBM2 hardware: 16 channels",
    ),
}


def scenario_ids() -> list[str]:
    """All registered preset scenario names, sorted."""
    return sorted(_PRESETS)


def preset_scenario(name: str, scale: float = 1.0) -> Scenario:
    """Build one named preset scenario at the given scale."""
    try:
        builder = _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario preset {name!r}; available: {scenario_ids()}"
        ) from None
    return builder(scale)
