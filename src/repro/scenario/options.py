"""One typed value parser for ``--opt k=v`` pairs and scenario overrides.

The CLI's experiment options and the scenario file overrides are the
same surface: untyped ``key=value`` strings that must become typed JSON
values before they reach a config constructor or a digest. Both entry
points funnel through :func:`coerce_value`, so the two cannot drift —
``--opt memories=ddr4`` on an experiment and
``--opt options.memories=ddr4`` on a scenario parse identically.

Coercion rules, first match wins:

- ``true`` / ``false`` (any case) -> bool
- ``none`` / ``null`` (any case)  -> None
- integer literal                  -> int
- float literal                    -> float
- quoted string                    -> its contents (forces string-ness:
  ``--opt label='"42"'`` keeps the string ``"42"``)
- bracketed literal (``[...]``, ``(...)``, ``{...}``) -> parsed
  container with each element already JSON-typed
- anything else                    -> the raw string
"""

from __future__ import annotations

import ast
from typing import Mapping

from ..errors import ConfigurationError

_BOOL_TOKENS = {"true": True, "false": False}
_NONE_TOKENS = {"none", "null"}


def coerce_value(raw: str) -> object:
    """Parse one option value string into a typed JSON value."""
    text = raw.strip()
    lowered = text.lower()
    if lowered in _BOOL_TOKENS:
        return _BOOL_TOKENS[lowered]
    if lowered in _NONE_TOKENS:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    if text[:1] in ("[", "(", "{"):
        try:
            return ast.literal_eval(text)
        except (ValueError, SyntaxError):
            pass
    return raw


def parse_assignments(pairs: list[str] | tuple[str, ...]) -> dict[str, object]:
    """``["k=v", ...]`` -> ``{"k": typed_value, ...}``.

    Keys may be dotted paths (``system.cores=8``); splitting the path
    is the consumer's concern (:func:`apply_overrides`), not the
    parser's — experiment options use flat keys with the same syntax.
    """
    assignments: dict[str, object] = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        key = key.strip()
        if not separator or not key:
            raise ConfigurationError(
                f"expected key=value, got {pair!r}"
            )
        assignments[key] = coerce_value(raw)
    return assignments


def apply_overrides(
    payload: Mapping, assignments: Mapping[str, object]
) -> dict:
    """Apply dotted-path overrides to a nested spec dict, returning a copy.

    ``{"system.cores": 8}`` replaces ``payload["system"]["cores"]``.
    Intermediate objects must already exist and be objects — overrides
    adjust a scenario, they do not invent structure (that is what the
    scenario file itself is for). New *leaf* keys are allowed so e.g.
    ``options.memories=ddr4`` can set an option the file omitted.
    """

    def deep_copy(value: object) -> object:
        if isinstance(value, Mapping):
            return {key: deep_copy(item) for key, item in value.items()}
        if isinstance(value, list):
            return [deep_copy(item) for item in value]
        return value

    result = deep_copy(payload)
    if not isinstance(result, dict):
        raise ConfigurationError("overrides need an object payload")
    for path, value in assignments.items():
        parts = path.split(".")
        target = result
        for index, part in enumerate(parts[:-1]):
            branch = target.get(part)
            if not isinstance(branch, dict):
                where = ".".join(parts[: index + 1])
                raise ConfigurationError(
                    f"override {path!r}: {where!r} is not an object in the "
                    "scenario"
                )
            target = branch
        target[parts[-1]] = value
    return result
