"""The scenario layer: one declarative config spine from platform to workload.

A :class:`Scenario` is the single typed, validated, canonically-
serializable description of a run — CPU substrate, memory model,
characterization sweep, workload — whose :meth:`Scenario.digest` is the
cache identity throughout the stack. Experiments build their machines
through scenario presets; the CLI loads user scenarios from JSON files;
the runner keys its result cache on scenario digests.

Submodules:

- :mod:`~repro.scenario.core` — the Scenario type, materialization,
  file loading;
- :mod:`~repro.scenario.memory` — declarative memory-model specs;
- :mod:`~repro.scenario.presets` — the named benchmark machines;
- :mod:`~repro.scenario.options` — the shared typed ``key=value``
  parser for CLI options and scenario overrides.
"""

from .core import (
    FORMAT_KEY,
    FORMAT_VERSION,
    MaterializedScenario,
    Scenario,
    load_scenario,
)
from .memory import (
    build_memory,
    memory_factory,
    memory_kinds,
    validate_memory_spec,
)
from .options import apply_overrides, coerce_value, parse_assignments
from .presets import (
    BENCH_HIERARCHY,
    bench_sweep,
    bench_system,
    characterization,
    preset_scenario,
    resolve_cache_model,
    scenario_ids,
    substrate,
)

__all__ = [
    "FORMAT_KEY",
    "FORMAT_VERSION",
    "MaterializedScenario",
    "Scenario",
    "load_scenario",
    "build_memory",
    "memory_factory",
    "memory_kinds",
    "validate_memory_spec",
    "apply_overrides",
    "coerce_value",
    "parse_assignments",
    "BENCH_HIERARCHY",
    "bench_sweep",
    "bench_system",
    "characterization",
    "preset_scenario",
    "resolve_cache_model",
    "scenario_ids",
    "substrate",
]
