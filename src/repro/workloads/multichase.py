"""Google multichase analog.

multichase runs one or more independent pointer chases; with one chaser
it measures unloaded latency (like LMbench but with a different chain
construction), with several it measures latency under self-induced
load. The paper uses the single-chase mode for validation and the
benchmark as the third member of the simulator-accuracy trio.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.pointer_chase import pointer_chase_ops
from ..cpu.system import System, SystemResult
from ..errors import ConfigurationError
from .base import Workload


@dataclass
class Multichase(Workload):
    """``parallel_chases`` independent dependent-load chains.

    Each chase walks its own array on its own core; the score is the
    mean latency across chases — multichase's ``-t`` parallel mode.
    """

    array_bytes: int = 64 * 1024 * 1024
    chase_ops: int = 4000
    parallel_chases: int = 1
    seed: int = 23
    metric_name: str = "latency_ns"
    higher_is_better: bool = False
    name: str = "multichase"

    def __post_init__(self) -> None:
        if self.parallel_chases < 1:
            raise ConfigurationError("parallel_chases must be >= 1")
        if self.chase_ops < 1:
            raise ConfigurationError("chase_ops must be >= 1")

    def attach(self, system: System) -> None:
        if self.parallel_chases > system.config.cores:
            raise ConfigurationError(
                f"{self.parallel_chases} chases need at least that many cores; "
                f"system has {system.config.cores}"
            )
        for chase in range(self.parallel_chases):
            system.add_workload(
                chase,
                pointer_chase_ops(
                    self.array_bytes,
                    base_address=chase * self.array_bytes,
                    seed=self.seed + chase,
                    max_ops=self.chase_ops,
                ),
                mshrs=1,
            )

    def score(self, result: SystemResult) -> float:
        """Mean dependent-load latency across all chases."""
        latency = result.mean_pointer_chase_latency_ns
        if latency <= 0:
            raise ConfigurationError("run produced no dependent loads")
        return latency
