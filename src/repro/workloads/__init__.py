"""Evaluation workloads: STREAM, LMbench, multichase, HPCG, GUPS, SPEC."""

from __future__ import annotations

from .base import Workload, simulation_error_pct
from .gups import GupsWorkload, gups_ops
from .hpcg import HPCG_ITERATION, HpcgPhaseProfile, HpcgProxy, PhaseSegment
from .lmbench import LmbenchLatency, latency_vs_working_set
from .multichase import Multichase
from .spec_mix import (
    SPEC_CPU2006,
    AppProfile,
    estimate_time_per_access,
    performance_delta_pct,
)
from .stream import StreamWorkload, best_stream_bandwidth

__all__ = [
    "AppProfile",
    "GupsWorkload",
    "HPCG_ITERATION",
    "HpcgPhaseProfile",
    "HpcgProxy",
    "LmbenchLatency",
    "Multichase",
    "PhaseSegment",
    "SPEC_CPU2006",
    "StreamWorkload",
    "Workload",
    "best_stream_bandwidth",
    "estimate_time_per_access",
    "gups_ops",
    "latency_vs_working_set",
    "performance_delta_pct",
    "simulation_error_pct",
]
