"""STREAM benchmark (McCalpin) memory behaviour.

The four kernels and their per-element application-level traffic:

========  ================  =====  ======  ==================
kernel    statement         loads  stores  app bytes/element
========  ================  =====  ======  ==================
Copy      c[i] = a[i]           1       1  16
Scale     b[i] = k*c[i]         1       1  16
Add       c[i] = a[i]+b[i]      2       1  24
Triad     a[i] = b[i]+k*c[i]    2       1  24
========  ================  =====  ======  ==================

STREAM reports bandwidth as *assumed* bytes moved divided by runtime:
one read per load and one write per store. On a write-allocate machine
every store really costs a read + a write, which is precisely why Mess
(counting at the memory controller) measures more traffic than STREAM
reports (Section III). Both numbers are exposed here: :meth:`score`
returns the STREAM-methodology bandwidth, while the run result's memory
counters give the architecture-level view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..cpu.core import Delay, MemOp, Operation
from ..cpu.system import System, SystemResult
from ..errors import ConfigurationError
from ..units import CACHE_LINE_BYTES
from .base import Workload

#: (name, loads per element, app bytes per element)
_KERNELS = {
    "copy": (1, 16),
    "scale": (1, 16),
    "add": (2, 24),
    "triad": (2, 24),
}


def _kernel_ops(
    loads_per_line: int,
    lines: int,
    array_bases: tuple[int, ...],
    store_base: int,
    compute_ns_per_line: float,
) -> Iterator[Operation]:
    """Line-granularity operations of one kernel pass over one slice."""
    for line in range(lines):
        offset = line * CACHE_LINE_BYTES
        for source in range(loads_per_line):
            yield MemOp(address=array_bases[source] + offset, is_store=False)
        yield MemOp(address=store_base + offset, is_store=True)
        if compute_ns_per_line > 0:
            yield Delay(compute_ns_per_line)


@dataclass
class StreamWorkload(Workload):
    """One STREAM kernel run on every core over private array slices.

    Parameters
    ----------
    kernel:
        ``"copy"``, ``"scale"``, ``"add"`` or ``"triad"``.
    lines_per_core:
        Cache lines (of 8 doubles) each core processes; total footprint
        must exceed the LLC for the measurement to be meaningful.
    compute_ns_per_line:
        FP work per line; small, STREAM is bandwidth-bound.
    """

    kernel: str = "triad"
    lines_per_core: int = 20_000
    compute_ns_per_line: float = 0.6
    metric_name: str = "bandwidth_gbps"
    higher_is_better: bool = True

    def __post_init__(self) -> None:
        if self.kernel not in _KERNELS:
            raise ConfigurationError(
                f"unknown STREAM kernel {self.kernel!r}; "
                f"available: {sorted(_KERNELS)}"
            )
        if self.lines_per_core < 1:
            raise ConfigurationError("lines_per_core must be >= 1")
        self.name = f"stream-{self.kernel}"
        self._cores_attached = 0

    def attach(self, system: System) -> None:
        loads_per_line, _ = _KERNELS[self.kernel]
        # three disjoint arrays per core (a, b, c), laid out per core
        slice_bytes = self.lines_per_core * CACHE_LINE_BYTES
        self._cores_attached = system.config.cores
        for core in range(system.config.cores):
            base = core * 3 * slice_bytes
            array_bases = (base, base + slice_bytes)
            store_base = base + 2 * slice_bytes
            system.add_workload(
                core,
                _kernel_ops(
                    loads_per_line,
                    self.lines_per_core,
                    array_bases,
                    store_base,
                    self.compute_ns_per_line,
                ),
            )

    def score(self, result: SystemResult) -> float:
        """STREAM-methodology bandwidth: assumed app bytes / runtime."""
        _, app_bytes_per_element = _KERNELS[self.kernel]
        elements = self.lines_per_core * 8 * self._cores_attached
        total_bytes = elements * app_bytes_per_element
        if result.duration_ns <= 0:
            raise ConfigurationError("run produced no elapsed time")
        return total_bytes / result.duration_ns  # bytes/ns == GB/s


def best_stream_bandwidth(
    system_factory, kernels: tuple[str, ...] = ("copy", "scale", "add", "triad"),
    lines_per_core: int = 20_000,
) -> dict[str, float]:
    """Run all four kernels on fresh systems; returns kernel -> GB/s."""
    results = {}
    for kernel in kernels:
        system = system_factory()
        workload = StreamWorkload(kernel=kernel, lines_per_core=lines_per_core)
        results[kernel] = workload.run(system)
    return results
