"""HPCG benchmark proxy (Section VI's profiling subject).

Two representations:

- :class:`HpcgPhaseProfile` — the benchmark's iterative structure as a
  timeline of (phase, MPI call, duration, memory demand) segments. The
  profiling experiments (Figures 15 and 16) sample this timeline against
  a platform's curves exactly the way Extrae samples hardware counters
  every 10 ms.
- :class:`HpcgProxy` — a runnable :class:`~repro.workloads.base.Workload`
  whose cores stream through sparse-matrix-shaped traffic, for
  integration tests of the live sampler.

HPCG is dominated by memory-bound sparse kernels (SpMV and the
multigrid smoother), with dot-product reductions and MPI_Allreduce
barriers between them; most of its execution sits in the saturated
bandwidth area of the host platform (Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..cpu.core import Delay, MemOp, Operation
from ..cpu.system import System, SystemResult
from ..errors import ConfigurationError
from ..units import CACHE_LINE_BYTES
from .base import Workload


@dataclass(frozen=True)
class PhaseSegment:
    """One segment of the HPCG timeline.

    ``bandwidth_fraction`` is relative to the platform's best sustained
    bandwidth; the profiler converts it to GB/s against a concrete curve
    family. ``mpi_call`` labels communication segments (None for pure
    compute), enabling the Figure 16 timeline analysis.
    """

    label: str
    duration_ms: float
    bandwidth_fraction: float
    read_ratio: float
    mpi_call: str | None = None

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ConfigurationError(f"{self.label}: duration must be positive")
        if not 0.0 <= self.bandwidth_fraction <= 1.2:
            raise ConfigurationError(
                f"{self.label}: bandwidth fraction {self.bandwidth_fraction} "
                "outside [0, 1.2]"
            )
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ConfigurationError(f"{self.label}: bad read ratio")


#: One HPCG main-loop iteration, shaped after the Figure 16 trace: a
#: halo exchange, the long SpMV phase with two distinct stress levels,
#: the multigrid smoother, a dot-product reduction, and the
#: MPI_Allreduce delimiter.
HPCG_ITERATION: tuple[PhaseSegment, ...] = (
    PhaseSegment("halo_exchange", 25.0, 0.30, 0.90, mpi_call="MPI_Send"),
    PhaseSegment("spmv_head", 300.0, 0.95, 0.80),
    PhaseSegment("spmv_tail", 260.0, 0.86, 0.82),
    PhaseSegment("mg_smoother", 220.0, 0.80, 0.80),
    PhaseSegment("dot_product", 80.0, 0.55, 0.95),
    PhaseSegment("allreduce", 35.0, 0.05, 1.00, mpi_call="MPI_Allreduce"),
)


@dataclass
class HpcgPhaseProfile:
    """A multi-iteration HPCG timeline."""

    iterations: int = 2
    segments: tuple[PhaseSegment, ...] = HPCG_ITERATION
    start_us: float = 241_748_818.0  # Figure 16's trace window start

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if not self.segments:
            raise ConfigurationError("segments must not be empty")

    @property
    def duration_ms(self) -> float:
        """Total timeline length in milliseconds."""
        return self.iterations * sum(s.duration_ms for s in self.segments)

    def timeline(self) -> Iterator[tuple[float, PhaseSegment]]:
        """Yield (start_time_ms, segment) over all iterations."""
        clock_ms = 0.0
        for _ in range(self.iterations):
            for segment in self.segments:
                yield clock_ms, segment
                clock_ms += segment.duration_ms


def _sparse_stream_ops(
    lines: int, base: int, store_every: int, compute_ns: float
) -> Iterator[Operation]:
    """SpMV-shaped traffic: streaming reads with periodic stores."""
    for line in range(lines):
        yield MemOp(address=base + line * CACHE_LINE_BYTES, is_store=False)
        if store_every and line % store_every == store_every - 1:
            yield MemOp(
                address=base + (lines + line) * CACHE_LINE_BYTES, is_store=True
            )
        if compute_ns > 0:
            yield Delay(compute_ns)


@dataclass
class HpcgProxy(Workload):
    """Runnable HPCG-shaped workload: one rank per core.

    The paper's use case runs 16 benchmark copies on a 16-core Cascade
    Lake socket; here each core streams SpMV-shaped traffic over a
    private slice.
    """

    lines_per_core: int = 12_000
    store_every: int = 5
    compute_ns_per_line: float = 0.8
    metric_name: str = "bandwidth_gbps"
    higher_is_better: bool = True
    name: str = "hpcg-proxy"

    def __post_init__(self) -> None:
        if self.lines_per_core < 1:
            raise ConfigurationError("lines_per_core must be >= 1")
        if self.store_every < 0:
            raise ConfigurationError("store_every must be >= 0")

    def attach(self, system: System) -> None:
        slice_bytes = 2 * self.lines_per_core * CACHE_LINE_BYTES
        for core in range(system.config.cores):
            system.add_workload(
                core,
                _sparse_stream_ops(
                    self.lines_per_core,
                    base=core * slice_bytes,
                    store_every=self.store_every,
                    compute_ns=self.compute_ns_per_line,
                ),
            )

    def score(self, result: SystemResult) -> float:
        """Architecture-level bandwidth achieved by the proxy."""
        return result.memory_bandwidth_gbps
