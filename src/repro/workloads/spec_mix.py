"""SPEC CPU2006 memory-behaviour profiles and an analytic runtime model.

Appendix B replays 500 billion instructions of each SPEC CPU2006
workload through ZSim+Mess against two curve families (CXL expander vs
remote socket). We have neither SPEC binaries nor their traces; what the
experiment actually consumes is each benchmark's *memory behaviour* —
how much latency-hidden compute sits between misses, how much memory
parallelism the code exposes, and its read/write mix. Those are encoded
per benchmark below (intensities follow the well-known SPEC CPU2006
memory characterization literature: lbm/libquantum/mcf/milc at the
memory-bound end, povray/gamess/h264ref at the compute-bound end).

The runtime estimator is a fixed-point iteration on the curve family:
latency determines achievable request rate, the request rate determines
bandwidth, bandwidth determines latency. This is the closed-form
equivalent of letting the Mess feedback controller converge, and it is
how Figures 17 and 18 are regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.family import CurveFamily
from ..errors import ConfigurationError
from ..units import CACHE_LINE_BYTES


@dataclass(frozen=True)
class AppProfile:
    """Memory behaviour of one application (per hardware thread).

    Attributes
    ----------
    gap_ns:
        Compute time between consecutive memory accesses with a
        zero-latency memory (the inverse of its miss intensity).
    mlp:
        Memory-level parallelism: how many misses overlap on average,
        i.e. how much of the latency is hidden.
    read_ratio:
        Memory-traffic read fraction (write-allocate floor applies).
    threads:
        Concurrent copies in the multiprogrammed mix.
    """

    name: str
    gap_ns: float
    mlp: float
    read_ratio: float
    threads: int = 24

    def __post_init__(self) -> None:
        if self.gap_ns < 0:
            raise ConfigurationError(f"{self.name}: gap must be >= 0")
        if self.mlp < 1.0:
            raise ConfigurationError(f"{self.name}: mlp must be >= 1")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ConfigurationError(f"{self.name}: bad read ratio")
        if self.threads < 1:
            raise ConfigurationError(f"{self.name}: threads must be >= 1")


def estimate_time_per_access(
    profile: AppProfile,
    family: CurveFamily,
    iterations: int = 60,
    damping: float = 0.5,
) -> tuple[float, float]:
    """Fixed-point (time-per-access, bandwidth) on a curve family.

    Iterates ``t = gap + latency(bw) / mlp`` with
    ``bw = threads * line / t`` until stable. Returns the converged
    ``(time_per_access_ns, bandwidth_gbps)``. The result is the steady
    state the Mess simulator's feedback loop converges to for a
    constant-behaviour application.
    """
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    if not 0.0 < damping <= 1.0:
        raise ConfigurationError("damping must be in (0, 1]")
    bandwidth = 0.0
    time_per_access = profile.gap_ns + family.unloaded_latency_ns / profile.mlp
    for _ in range(iterations):
        latency = family.latency_at(bandwidth, profile.read_ratio)
        new_time = profile.gap_ns + latency / profile.mlp
        time_per_access = (
            (1.0 - damping) * time_per_access + damping * new_time
        )
        new_bw = profile.threads * CACHE_LINE_BYTES / time_per_access
        bandwidth = (1.0 - damping) * bandwidth + damping * new_bw
    return time_per_access, bandwidth


def performance_delta_pct(
    profile: AppProfile, family_a: CurveFamily, family_b: CurveFamily
) -> float:
    """Performance of ``family_b`` relative to ``family_a``, in percent.

    Positive means the application runs faster on ``family_b``
    (performance is the reciprocal of time per access).
    """
    time_a, _ = estimate_time_per_access(profile, family_a)
    time_b, _ = estimate_time_per_access(profile, family_b)
    return 100.0 * (time_a / time_b - 1.0)


def _p(name: str, gap: float, mlp: float, ratio: float) -> AppProfile:
    return AppProfile(name=name, gap_ns=gap, mlp=mlp, read_ratio=ratio)


#: SPEC CPU2006 profiles, compute-bound to memory-bound. ``gap_ns`` and
#: ``mlp`` are tuned to span the bandwidth-utilization axis of
#: Figure 18 on the CXL/remote-socket families (roughly 2% to 95% of
#: the CXL theoretical bandwidth).
SPEC_CPU2006: tuple[AppProfile, ...] = (
    _p("povray", 420.0, 1.2, 0.95),
    _p("gamess", 360.0, 1.2, 0.95),
    _p("namd", 300.0, 1.3, 0.92),
    _p("h264ref", 250.0, 1.4, 0.90),
    _p("perlbench", 210.0, 1.4, 0.90),
    _p("gobmk", 180.0, 1.4, 0.90),
    _p("sjeng", 160.0, 1.5, 0.92),
    _p("tonto", 140.0, 1.5, 0.88),
    _p("calculix", 120.0, 1.6, 0.88),
    _p("hmmer", 100.0, 1.6, 0.92),
    _p("gromacs", 85.0, 1.7, 0.88),
    _p("dealII", 70.0, 1.8, 0.85),
    _p("bzip2", 58.0, 1.8, 0.85),
    _p("gcc", 48.0, 1.9, 0.85),
    _p("astar", 40.0, 1.9, 0.85),
    _p("xalancbmk", 33.0, 2.0, 0.85),
    _p("cactusADM", 14.0, 3.0, 0.80),
    _p("zeusmp", 12.0, 3.2, 0.80),
    _p("wrf", 10.0, 3.5, 0.80),
    _p("sphinx3", 8.0, 3.5, 0.85),
    _p("omnetpp", 6.0, 4.0, 0.82),
    _p("bwaves", 3.0, 8.0, 0.80),
    _p("GemsFDTD", 2.6, 9.0, 0.75),
    _p("leslie3d", 2.2, 10.0, 0.72),
    _p("soplex", 2.0, 9.0, 0.75),
    _p("milc", 1.5, 10.0, 0.70),
    _p("mcf", 1.6, 8.0, 0.72),
    _p("libquantum", 1.0, 14.0, 0.68),
    _p("lbm", 0.8, 16.0, 0.62),
)
