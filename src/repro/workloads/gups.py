"""GUPS / RandomAccess workload (HPC Challenge).

Section IV-D notes the Mess traffic generator extends naturally to other
access patterns and names HPCC RandomAccess (Giga Updates Per Second) as
one of them: random read-modify-write updates over a huge table, the
worst case for row-buffer locality. We implement it both as an
alternative traffic pattern (for the row-buffer ablation) and as a
runnable workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..cpu.core import MemOp, Operation
from ..cpu.system import System, SystemResult
from ..errors import ConfigurationError
from ..units import CACHE_LINE_BYTES
from .base import Workload


def gups_ops(
    table_bytes: int,
    base_address: int = 0,
    seed: int = 0,
    max_updates: int | None = None,
) -> Iterator[Operation]:
    """Random read-modify-write updates: each is a load plus a store.

    Every update touches a uniformly random cache line, so consecutive
    operations almost never share a DRAM row — the anti-pattern to the
    Mess generator's sequential arrays.
    """
    if table_bytes < CACHE_LINE_BYTES:
        raise ConfigurationError("table must hold at least one line")
    lines = table_bytes // CACHE_LINE_BYTES
    rng = np.random.default_rng(seed)
    issued = 0
    batch = 2048
    while max_updates is None or issued < max_updates:
        for index in rng.integers(0, lines, size=batch):
            if max_updates is not None and issued >= max_updates:
                return
            address = base_address + int(index) * CACHE_LINE_BYTES
            yield MemOp(address=address, is_store=False)
            yield MemOp(address=address, is_store=True)
            issued += 1


@dataclass
class GupsWorkload(Workload):
    """RandomAccess on every core; score is updates per microsecond."""

    table_bytes: int = 64 * 1024 * 1024
    updates_per_core: int = 3000
    seed: int = 11
    metric_name: str = "updates_per_us"
    higher_is_better: bool = True
    name: str = "gups"

    def __post_init__(self) -> None:
        if self.updates_per_core < 1:
            raise ConfigurationError("updates_per_core must be >= 1")
        self._total_updates = 0

    def attach(self, system: System) -> None:
        self._total_updates = self.updates_per_core * system.config.cores
        for core in range(system.config.cores):
            system.add_workload(
                core,
                gups_ops(
                    self.table_bytes,
                    base_address=core * self.table_bytes,
                    seed=self.seed + core,
                    max_updates=self.updates_per_core,
                ),
            )

    def score(self, result: SystemResult) -> float:
        if result.duration_ns <= 0:
            raise ConfigurationError("run produced no elapsed time")
        return 1000.0 * self._total_updates / result.duration_ns
