"""Workload interface for full-system simulations.

A workload knows how to attach operation streams to a
:class:`~repro.cpu.system.System` and how to extract its headline
performance metric from the run result. The paper's simulator evaluation
(Figures 11 and 13) compares exactly these metrics between a simulated
and an "actual" platform, per memory model.
"""

from __future__ import annotations

import abc

from ..cpu.system import System, SystemResult


class Workload(abc.ABC):
    """One benchmark runnable on a simulated system."""

    #: Short identifier used in experiment tables.
    name: str = "workload"
    #: What :meth:`score` measures, e.g. ``"bandwidth_gbps"``.
    metric_name: str = "score"
    #: True when a larger score means better performance (bandwidth);
    #: False for latency-style metrics.
    higher_is_better: bool = True

    @abc.abstractmethod
    def attach(self, system: System) -> None:
        """Attach this workload's operation streams to ``system``."""

    @abc.abstractmethod
    def score(self, result: SystemResult) -> float:
        """Extract the benchmark's headline metric from a run result."""

    def run(self, system: System, until_ns: float | None = None) -> float:
        """Attach, run to completion (or a bound) and return the score."""
        self.attach(system)
        result = system.run(until_ns=until_ns)
        return self.score(result)


def simulation_error_pct(simulated: float, actual: float) -> float:
    """Relative simulation error in percent (paper's Figures 11/13)."""
    if actual == 0:
        raise ZeroDivisionError("actual metric is zero; error undefined")
    return 100.0 * abs(simulated - actual) / abs(actual)
