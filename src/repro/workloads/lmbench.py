"""LMbench ``lat_mem_rd`` analog: unloaded memory latency.

LMbench walks a pointer chain over increasing working-set sizes; the
plateau past the LLC size is the main-memory load-to-use latency. The
paper uses it (with Google multichase) to validate Mess's unloaded
latency and as one of the three benchmarks in the simulator accuracy
comparison (Figures 11 and 13).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.pointer_chase import pointer_chase_ops
from ..cpu.system import System, SystemResult
from ..errors import ConfigurationError
from .base import Workload


@dataclass
class LmbenchLatency(Workload):
    """Single-core dependent-load chain over a memory-sized array."""

    array_bytes: int = 64 * 1024 * 1024
    chase_ops: int = 4000
    seed: int = 7
    metric_name: str = "latency_ns"
    higher_is_better: bool = False
    name: str = "lmbench"

    def __post_init__(self) -> None:
        if self.chase_ops < 1:
            raise ConfigurationError("chase_ops must be >= 1")

    def attach(self, system: System) -> None:
        system.add_workload(
            0,
            pointer_chase_ops(
                self.array_bytes,
                base_address=0,
                seed=self.seed,
                max_ops=self.chase_ops,
            ),
            mshrs=1,
        )

    def score(self, result: SystemResult) -> float:
        """Mean load-to-use latency of the chain (nanoseconds)."""
        latency = result.mean_pointer_chase_latency_ns
        if latency <= 0:
            raise ConfigurationError("run produced no dependent loads")
        return latency


def latency_vs_working_set(
    system_factory,
    sizes_bytes: tuple[int, ...] = (
        32 * 1024,
        256 * 1024,
        4 * 1024 * 1024,
        64 * 1024 * 1024,
    ),
    chase_ops: int = 3000,
) -> dict[int, float]:
    """The classic lat_mem_rd staircase: size -> mean latency.

    Small working sets hit in cache (low plateaus); the largest plateau
    is the unloaded memory latency.
    """
    results = {}
    for size in sizes_bytes:
        system = system_factory()
        workload = LmbenchLatency(array_bytes=size, chase_ops=chase_ops)
        results[size] = workload.run(system)
    return results
