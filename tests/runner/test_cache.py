"""Tests for the content-addressed on-disk cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.runner import cache as cache_mod
from repro.runner.cache import ResultCache, default_cache_dir, stable_digest


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


class TestKeys:
    def test_digest_is_order_independent(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_digest_distinguishes_values(self):
        assert stable_digest({"a": 1}) != stable_digest({"a": 2})

    def test_key_includes_kind(self, cache):
        config = {"x": 1}
        assert cache.key_for("result", config) != cache.key_for(
            "characterization", config
        )

    def test_key_is_hex_sha256(self, cache):
        key = cache.key_for("result", {"x": 1})
        assert len(key) == 64
        int(key, 16)  # must parse as hex

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestRoundTrip:
    def test_put_get(self, cache):
        key = cache.key_for("result", {"id": "fig2"})
        payload = {"rows": [1, 2, 3], "title": "demo"}
        assert cache.put(key, payload, kind="result")
        assert cache.get(key) == payload
        assert cache.hits == 1

    def test_miss_returns_none(self, cache):
        assert cache.get(cache.key_for("result", {"id": "nothing"})) is None
        assert cache.misses == 1

    def test_no_temp_droppings(self, cache):
        key = cache.key_for("result", {"id": "fig2"})
        cache.put(key, {"v": 1})
        leftovers = [
            p
            for p in cache.root.rglob("*")
            if p.is_file() and not p.name.endswith(f"{key}.json")
        ]
        assert leftovers == []

    def test_put_failure_is_nonfatal(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the cache root should be")
        cache = ResultCache(blocked)
        assert cache.put("ab" * 32, {"v": 1}) is False


class TestCorruption:
    def test_truncated_entry_is_discarded(self, cache):
        key = cache.key_for("result", {"id": "fig2"})
        cache.put(key, {"v": 1})
        path = cache._path(key)
        path.write_text('{"key": "' + key + '", "payl')  # truncated JSON
        assert cache.get(key) is None
        assert not path.exists(), "corrupt entry must be deleted"
        # recompute-and-store works again afterwards
        assert cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}

    def test_key_mismatch_is_discarded(self, cache):
        key = cache.key_for("result", {"id": "fig2"})
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"key": "0" * 64, "payload": {"v": 1}}))
        assert cache.get(key) is None
        assert not path.exists()

    def test_garbage_bytes_are_discarded(self, cache):
        key = cache.key_for("result", {"id": "fig2"})
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(os.urandom(64))
        assert cache.get(key) is None
        assert cache.misses == 1


class TestMaintenance:
    def test_info_counts_entries(self, cache):
        assert cache.info()["entries"] == 0
        cache.put(cache.key_for("result", {"i": 1}), {"v": 1}, kind="result")
        cache.put(
            cache.key_for("characterization", {"i": 2}),
            {"v": 2},
            kind="characterization",
        )
        info = cache.info()
        assert info["entries"] == 2
        assert info["bytes"] > 0
        assert info["kinds"] == {"result": 1, "characterization": 1}

    def test_clear_removes_everything(self, cache):
        for i in range(3):
            cache.put(cache.key_for("result", {"i": i}), {"v": i})
        assert cache.clear() == 3
        assert cache.info()["entries"] == 0


class TestActivation:
    def test_activate_deactivate(self, cache):
        assert cache_mod.active_cache() is None
        installed = cache_mod.activate(cache)
        assert installed is cache
        assert cache_mod.active_cache() is cache
        cache_mod.deactivate()
        assert cache_mod.active_cache() is None

    def test_activate_default_uses_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path / "envcache"))
        installed = cache_mod.activate()
        try:
            assert installed.root == tmp_path / "envcache"
        finally:
            cache_mod.deactivate()
