"""Tests for the parallel experiment runner and its manifest."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.runner import ResultCache, RunManifest, run_many
from repro.runner import cache as cache_mod

#: Cheap, deterministic experiments used throughout; fig3 exercises the
#: characterization-free path, fig17 the simulator-free CXL path.
FAST_IDS = ["fig2", "fig17"]


def rows_blob(outcome) -> str:
    """Byte-comparable encoding of every result's rows, in id order."""
    return json.dumps(
        {i: outcome.results[i].to_dict() for i in sorted(outcome.results)},
        sort_keys=True,
    )


class TestValidation:
    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_many(["fig99"], use_cache=False)

    def test_duplicate_selection(self):
        with pytest.raises(ConfigurationError):
            run_many(["fig2", "fig2"], use_cache=False)

    def test_empty_selection(self):
        with pytest.raises(ConfigurationError):
            run_many([], use_cache=False)

    def test_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            run_many(FAST_IDS, jobs=0, use_cache=False)

    def test_unknown_option_rejected_before_running(self):
        with pytest.raises(ConfigurationError):
            run_many(["fig2"], options={"fig2": {"bogus": 1}}, use_cache=False)

    def test_options_for_unselected_experiment(self):
        with pytest.raises(ConfigurationError):
            run_many(["fig2"], options={"fig17": {}}, use_cache=False)


class TestSerialRuns:
    def test_results_and_manifest(self, tmp_path):
        seen = []
        outcome = run_many(
            FAST_IDS,
            jobs=1,
            use_cache=False,
            progress=seen.append,
        )
        assert sorted(outcome.results) == sorted(FAST_IDS)
        assert [r.experiment_id for r in outcome.manifest.records] == FAST_IDS
        assert outcome.manifest.ok
        assert outcome.manifest.total_rows > 0
        assert {r.experiment_id for r in seen} == set(FAST_IDS)
        for record in outcome.manifest.records:
            assert record.status == "ok"
            assert record.rows == len(outcome.results[record.experiment_id].rows)
            assert record.result_digest
            assert record.duration_s >= 0

    def test_failing_experiment_is_recorded_not_raised(self):
        outcome = run_many(
            ["fig2", "fig3"],
            options={"fig3": {"platforms": "no-such-platform"}},
            use_cache=False,
        )
        by_id = {r.experiment_id: r for r in outcome.manifest.records}
        assert by_id["fig2"].status == "ok"
        assert by_id["fig3"].status == "error"
        assert "no-such-platform" in by_id["fig3"].error
        assert not outcome.manifest.ok
        assert "fig3" not in outcome.results

    def test_options_are_applied(self):
        outcome = run_many(
            ["fig3"],
            options={"fig3": {"platforms": "skylake"}},
            use_cache=False,
        )
        platforms = {row["platform"] for row in outcome.results["fig3"].rows}
        assert platforms == {"Intel Skylake Xeon Platinum"}


class TestParallelEqualsSerial:
    def test_jobs4_and_jobs1_rows_identical(self):
        serial = run_many(FAST_IDS, jobs=1, use_cache=False)
        parallel = run_many(FAST_IDS, jobs=4, use_cache=False)
        assert rows_blob(serial) == rows_blob(parallel)
        serial_digests = [r.result_digest for r in serial.manifest.records]
        parallel_digests = [r.result_digest for r in parallel.manifest.records]
        assert serial_digests == parallel_digests

    def test_parallel_failure_is_recorded(self):
        outcome = run_many(
            ["fig2", "fig3"],
            jobs=2,
            options={"fig3": {"platforms": "no-such-platform"}},
            use_cache=False,
        )
        by_id = {r.experiment_id: r for r in outcome.manifest.records}
        assert by_id["fig2"].status == "ok"
        assert by_id["fig3"].status == "error"


class TestCaching:
    def test_second_run_hits_cache_and_matches(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_many(FAST_IDS, cache_dir=cache_dir)
        assert cold.manifest.total_cache_hits == 0
        warm = run_many(FAST_IDS, cache_dir=cache_dir)
        assert warm.manifest.total_cache_hits == len(FAST_IDS)
        assert rows_blob(cold) == rows_blob(warm)
        # cache traffic is reported per experiment
        for record in warm.manifest.records:
            assert record.cache_hits >= 1
            assert record.cache_misses == 0

    def test_manifest_reports_cache_dir(self, tmp_path):
        cache_dir = tmp_path / "cache"
        outcome = run_many(["fig2"], cache_dir=cache_dir)
        assert outcome.manifest.cache_dir == str(cache_dir)
        assert run_many(["fig2"], use_cache=False).manifest.cache_dir is None

    def test_corrupted_entries_recovered(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_many(FAST_IDS, cache_dir=cache_dir)
        # trash every cache entry on disk
        trashed = 0
        for path in ResultCache(cache_dir).entries():
            path.write_text("{definitely not json")
            trashed += 1
        assert trashed > 0
        again = run_many(FAST_IDS, cache_dir=cache_dir)
        assert again.manifest.ok
        assert again.manifest.total_cache_hits == 0
        assert rows_blob(cold) == rows_blob(again)

    def test_scale_and_options_miss_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_many(["fig3"], cache_dir=cache_dir)
        other = run_many(
            ["fig3"],
            cache_dir=cache_dir,
            options={"fig3": {"platforms": "skylake"}},
        )
        assert other.manifest.total_cache_hits == 0



class TestManifestSerialization:
    def test_write_read_round_trip(self, tmp_path):
        outcome = run_many(["fig2"], use_cache=False)
        path = tmp_path / "manifest.json"
        outcome.manifest.write(path)
        loaded = RunManifest.read(path)
        assert loaded.to_dict() == outcome.manifest.to_dict()
        assert loaded.ok
        assert loaded.records[0].experiment_id == "fig2"

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("not json at all")
        with pytest.raises(ConfigurationError):
            RunManifest.read(path)

    def test_summary_mentions_failures(self):
        outcome = run_many(
            ["fig3"],
            options={"fig3": {"platforms": "no-such-platform"}},
            use_cache=False,
        )
        assert "FAILED=1" in outcome.manifest.summary()


class TestCacheActivationHygiene:
    def test_no_cache_deactivates_global(self, tmp_path):
        cache_mod.activate(ResultCache(tmp_path / "cache"))
        run_many(["fig2"], use_cache=False)
        assert cache_mod.active_cache() is None

    def test_cache_dir_switch_replaces_active(self, tmp_path):
        first = tmp_path / "first"
        second = tmp_path / "second"
        run_many(["fig2"], cache_dir=first)
        assert cache_mod.active_cache().root == first
        run_many(["fig2"], cache_dir=second)
        assert cache_mod.active_cache().root == second


def _tiny_scenario(name: str = "runner-tiny"):
    from repro.bench.harness import MessBenchmarkConfig
    from repro.scenario import characterization

    return characterization(
        name=name,
        memory_kind="fixed-latency",
        memory_params={"latency_ns": 60.0},
        cores=2,
        sweep=MessBenchmarkConfig(
            store_fractions=(0.0, 1.0),
            nop_counts=(0, 600),
            warmup_ns=500.0,
            measure_ns=1500.0,
            chase_array_bytes=512 * 1024,
            traffic_array_bytes=512 * 1024,
        ),
    )


class TestScenarios:
    def test_scenarios_only_run(self):
        outcome = run_many(scenarios=[_tiny_scenario()], use_cache=False)
        assert outcome.manifest.ok
        label = "scenario:runner-tiny"
        assert [r.experiment_id for r in outcome.manifest.records] == [label]
        assert outcome.results[label].rows

    def test_spec_dicts_accepted(self):
        outcome = run_many(
            scenarios=[_tiny_scenario().to_spec()], use_cache=False
        )
        assert outcome.manifest.ok

    def test_invalid_scenario_rejected_up_front(self):
        from repro.scenario.core import Scenario

        with pytest.raises(ConfigurationError):
            run_many(scenarios=[Scenario(name="no-memory")], use_cache=False)

    def test_serial_and_parallel_rows_identical(self):
        scenarios = [_tiny_scenario(), _tiny_scenario("runner-tiny-b")]
        serial = run_many(scenarios=scenarios, jobs=1, use_cache=False)
        parallel = run_many(scenarios=scenarios, jobs=2, use_cache=False)
        assert rows_blob(serial) == rows_blob(parallel)

    def test_cache_key_is_the_scenario_digest(self, tmp_path):
        scenario = _tiny_scenario("runner-cache")
        cache_dir = tmp_path / "cache"
        first = run_many(scenarios=[scenario], cache_dir=cache_dir)
        second = run_many(scenarios=[scenario], cache_dir=cache_dir)
        record = second.manifest.records[0]
        assert record.cache_hits == 1
        cache = ResultCache(cache_dir)
        assert cache.get(scenario.digest()) is not None
        blob_first = first.results["scenario:runner-cache"].to_dict()
        blob_second = second.results["scenario:runner-cache"].to_dict()
        assert blob_first == blob_second

    def test_mixed_experiments_and_scenarios(self):
        outcome = run_many(
            ["fig17"], scenarios=[_tiny_scenario("runner-mixed")], jobs=2,
            use_cache=False,
        )
        labels = {r.experiment_id for r in outcome.manifest.records}
        assert labels == {"fig17", "scenario:runner-mixed"}
        assert outcome.manifest.ok
