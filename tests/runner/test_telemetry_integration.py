"""Runner + telemetry integration: collection, manifests, version skew."""

from __future__ import annotations

import json

from repro.runner import RunManifest, environment_header, run_many
from repro.runner.manifest import ExperimentRecord
from repro.telemetry import TelemetryRegistry
from repro.telemetry import registry as telemetry_mod

FAST_IDS = ["fig2", "fig17"]


class TestCollection:
    def test_disabled_by_default(self):
        outcome = run_many(["fig17"], use_cache=False)
        assert outcome.telemetry is None
        assert all(r.telemetry is None for r in outcome.manifest.records)

    def test_collects_merged_registry_serial(self):
        # optane drives the Mess simulator, so simulator counters and
        # per-window samples must surface in the merged registry
        outcome = run_many(
            ["optane", "fig17"], jobs=1, use_cache=False, collect_telemetry=True
        )
        assert isinstance(outcome.telemetry, TelemetryRegistry)
        span_names = {span.name for span in outcome.telemetry.spans}
        assert "runner.experiment" in span_names
        counters = outcome.telemetry.summary()["counters"]
        assert counters.get("sim.requests", 0) > 0
        assert counters.get("sim.windows", 0) > 0
        assert any(
            sample.series == "sim.window" for sample in outcome.telemetry.samples
        )

    def test_collects_across_worker_processes(self):
        outcome = run_many(
            FAST_IDS, jobs=2, use_cache=False, collect_telemetry=True
        )
        experiment_spans = [
            span
            for span in outcome.telemetry.spans
            if span.name == "runner.experiment"
        ]
        assert {span.attrs.get("id") for span in experiment_spans} == set(
            FAST_IDS
        )

    def test_per_experiment_summary_in_records(self):
        outcome = run_many(
            ["fig2"], use_cache=False, collect_telemetry=True
        )
        record = outcome.manifest.records[0]
        assert record.telemetry is not None
        assert record.telemetry["spans"]["runner.experiment"]["count"] == 1
        assert json.dumps(record.telemetry)  # JSON-serializable

    def test_collection_leaves_global_registry_alone(self):
        assert telemetry_mod.active() is None
        run_many(["fig17"], use_cache=False, collect_telemetry=True)
        assert telemetry_mod.active() is None


class TestManifestRoundTrip:
    def test_telemetry_summary_survives_write_read(self, tmp_path):
        outcome = run_many(
            ["fig17"], use_cache=False, collect_telemetry=True
        )
        path = tmp_path / "manifest.json"
        outcome.manifest.write(path)
        loaded = RunManifest.read(path)
        original = outcome.manifest.records[0].telemetry
        restored = loaded.records[0].telemetry
        assert restored == original
        assert restored["counters"] == original["counters"]
        assert loaded.to_dict() == outcome.manifest.to_dict()

    def test_environment_header_recorded(self, tmp_path):
        outcome = run_many(["fig17"], use_cache=False)
        path = tmp_path / "manifest.json"
        outcome.manifest.write(path)
        payload = json.loads(path.read_text())
        expected = environment_header()
        assert payload["python_version"] == expected["python_version"]
        assert payload["platform"] == expected["platform"]
        assert payload["package_version"]

    def test_reader_tolerates_unknown_keys(self, tmp_path):
        outcome = run_many(["fig17"], use_cache=False)
        payload = outcome.manifest.to_dict()
        payload["from_the_future"] = {"shiny": True}
        payload["experiments"][0]["novel_field"] = 42
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(payload))
        loaded = RunManifest.read(path)
        assert loaded.records[0].experiment_id == "fig17"
        assert loaded.records[0].status == "ok"

    def test_record_from_dict_drops_unknown_keys(self):
        record = ExperimentRecord.from_dict(
            {"experiment_id": "x", "status": "ok", "mystery": 1}
        )
        assert record.experiment_id == "x"
        assert not hasattr(record, "mystery")
