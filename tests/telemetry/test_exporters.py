"""Exporter tests: Chrome trace-event validity, Prometheus parseability.

The acceptance bar: the emitted Chrome trace file must be valid
trace-event JSON, and the Prometheus export must parse — so this module
contains a miniature parser for Prometheus text exposition 0.0.4 and
runs it against the real export.
"""

from __future__ import annotations

import json
import math
import re

import pytest

from repro.telemetry import (
    TelemetryRegistry,
    chrome_trace,
    jsonl_lines,
    metric_name,
    prometheus_text,
    summarize_file,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)


def parse_prometheus(text: str) -> dict:
    """Tiny Prometheus text-exposition 0.0.4 parser.

    Returns {metric_name: {labels_frozenset: value}} plus the TYPE
    declarations; raises AssertionError on any malformed line.
    """
    metrics: dict[str, dict] = {}
    types: dict[str, str] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            assert len(line.split(" ", 3)) == 4, line
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in {"counter", "gauge", "histogram", "summary", "untyped"}
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line}"
        match = _METRIC_LINE.match(line)
        assert match is not None, f"unparseable sample line: {line}"
        labels = frozenset(
            tuple(part.split("=", 1))
            for part in (match.group("labels") or "").split(",")
            if part
        )
        value = float(match.group("value"))
        assert math.isfinite(value)
        metrics.setdefault(match.group("name"), {})[labels] = value
    return {"metrics": metrics, "types": types}


def populated_registry() -> TelemetryRegistry:
    registry = TelemetryRegistry()
    registry.counter("dram.row_hits", help="row buffer hits").inc(7)
    registry.gauge("sim.controller_error_gbps").set(-0.25)
    histogram = registry.histogram("dram.write_queue_occupancy", bounds=(1.0, 4.0))
    for value in (0.0, 2.0, 3.0, 9.0):
        histogram.observe(value)
    with registry.span("bench.characterize", category="bench", family="x"):
        pass
    registry.event("runner.result_cache_hit", id="fig2")
    registry.sample("sim.window", ts_us=10.0, cpu_bw_gbps=12.0)
    registry.sample("sim.window", ts_us=20.0, cpu_bw_gbps=14.0)
    return registry


class TestChromeTrace:
    def test_document_is_valid_trace_event_json(self, tmp_path):
        registry = populated_registry()
        path = tmp_path / "trace.json"
        write_chrome_trace(registry, path)
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        phases = {"M", "X", "i", "C", "B", "E", "b", "e", "s", "t", "f"}
        for entry in document["traceEvents"]:
            assert entry["ph"] in phases
            assert isinstance(entry["pid"], int)
            if entry["ph"] in {"X", "i", "C"}:
                assert isinstance(entry["ts"], (int, float))
            if entry["ph"] == "X":
                assert entry["dur"] >= 0.0

    def test_span_timestamps_rebased_to_zero(self):
        document = chrome_trace(populated_registry())
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert spans and min(span["ts"] for span in spans) == pytest.approx(0.0)

    def test_sim_samples_live_on_their_own_pid(self):
        document = chrome_trace(populated_registry())
        counter_events = [e for e in document["traceEvents"] if e["ph"] == "C"]
        span_events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in counter_events} == {2}
        assert {e["pid"] for e in span_events} == {1}
        assert counter_events[0]["args"] == {"cpu_bw_gbps": 12.0}

    def test_empty_registry_still_valid(self):
        document = chrome_trace(TelemetryRegistry())
        assert all(e["ph"] == "M" for e in document["traceEvents"])


class TestPrometheus:
    def test_export_parses(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(populated_registry(), path)
        parsed = parse_prometheus(path.read_text())
        assert parsed["metrics"]["repro_dram_row_hits_total"] == {
            frozenset(): 7.0
        }
        assert parsed["types"]["repro_dram_row_hits_total"] == "counter"
        assert parsed["metrics"]["repro_sim_controller_error_gbps"] == {
            frozenset(): -0.25
        }

    def test_histogram_buckets_cumulative(self):
        parsed = parse_prometheus(prometheus_text(populated_registry()))
        buckets = parsed["metrics"]["repro_dram_write_queue_occupancy_bucket"]
        assert buckets[frozenset({("le", '"1"')})] == 1.0
        assert buckets[frozenset({("le", '"4"')})] == 3.0
        assert buckets[frozenset({("le", '"+Inf"')})] == 4.0
        counts = parsed["metrics"]["repro_dram_write_queue_occupancy_count"]
        assert counts[frozenset()] == 4.0
        sums = parsed["metrics"]["repro_dram_write_queue_occupancy_sum"]
        assert sums[frozenset()] == 14.0

    def test_metric_name_sanitization(self):
        assert metric_name("dram.row_hits") == "repro_dram_row_hits"
        assert metric_name("weird name!") == "repro_weird_name_"
        assert metric_name("repro_already") == "repro_already"

    def test_empty_registry_exports_empty(self):
        assert prometheus_text(TelemetryRegistry()) == ""


class TestJsonlAndSummarize:
    def test_jsonl_lines_all_valid_json(self):
        lines = jsonl_lines(populated_registry())
        records = [json.loads(line) for line in lines]
        types = {record["type"] for record in records}
        assert types == {"instrument", "span", "event", "sample"}

    def test_summarize_jsonl_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(populated_registry(), path)
        summary = summarize_file(path)
        assert summary["format"] == "jsonl"
        assert summary["counters"]["dram.row_hits"] == 7
        assert summary["spans"]["bench.characterize"]["count"] == 1
        assert summary["series"]["sim.window"]["samples"] == 2
        assert summary["series"]["sim.window"]["values"]["cpu_bw_gbps"]["max"] == 14.0
        assert summary["events"] == 1

    def test_summarize_chrome_trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(populated_registry(), path)
        summary = summarize_file(path)
        assert summary["format"] == "chrome-trace"
        assert summary["spans"]["bench.characterize"]["count"] == 1
        assert summary["series"]["sim.window"]["samples"] == 2

    def test_summarize_rejects_empty_file(self, tmp_path):
        from repro.errors import TelemetryError

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TelemetryError):
            summarize_file(path)
