"""Unit tests for telemetry instruments and the registry."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
)
from repro.telemetry import registry as telemetry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(TelemetryError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0


class TestHistogram:
    def test_bucketing_is_inclusive_upper_bound(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            histogram.observe(value)
        assert histogram.counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.total == pytest.approx(27.5)
        assert histogram.mean == pytest.approx(5.5)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(TelemetryError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(TelemetryError):
            Histogram("h", bounds=())


class TestRegistryInstruments:
    def test_get_or_create_returns_same_object(self):
        registry = TelemetryRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = TelemetryRegistry()
        registry.counter("a")
        with pytest.raises(TelemetryError):
            registry.gauge("a")

    def test_span_event_sample_recorded(self):
        registry = TelemetryRegistry()
        with registry.span("work", category="test", item=3):
            pass
        registry.event("happened", detail="x")
        registry.sample("series", ts_us=12.5, value=1.0)
        assert registry.spans[0].name == "work"
        assert registry.spans[0].dur_us >= 0.0
        assert registry.spans[0].attrs == {"item": 3}
        assert registry.events[0].name == "happened"
        assert registry.samples[0].values == {"value": 1.0}

    def test_record_cap_counts_drops(self):
        registry = TelemetryRegistry(max_records=2)
        for index in range(5):
            registry.event(f"e{index}")
        assert len(registry.events) == 2
        assert registry.dropped == 3

    def test_span_recorded_even_when_body_raises(self):
        registry = TelemetryRegistry()
        with pytest.raises(ValueError):
            with registry.span("boom"):
                raise ValueError("x")
        assert [span.name for span in registry.spans] == ["boom"]


class TestMergeAndSummary:
    def test_merge_accumulates_counters_and_histograms(self):
        source = TelemetryRegistry()
        source.counter("c").inc(3)
        source.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        source.gauge("g").set(7.0)
        source.sample("s", ts_us=1.0, v=2.0)
        with source.span("sp"):
            pass

        target = TelemetryRegistry()
        target.counter("c").inc(1)
        target.merge_dict(source.to_dict())
        target.merge_dict(source.to_dict())
        assert target.counter("c").value == 7
        assert target.histogram("h", bounds=(1.0, 2.0)).count == 2
        assert target.gauge("g").value == 7.0
        assert len(target.samples) == 2
        assert len(target.spans) == 2

    def test_merge_rejects_garbage(self):
        registry = TelemetryRegistry()
        with pytest.raises(TelemetryError):
            registry.merge_dict({"instruments": {"x": {"kind": "nope"}}})

    def test_summary_shape(self):
        registry = TelemetryRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(3.0)
        with registry.span("sp"):
            pass
        summary = registry.summary()
        assert summary["counters"] == {"c": 2}
        assert summary["histograms"]["h"]["count"] == 1
        assert summary["spans"]["sp"]["count"] == 1
        assert summary["spans"]["sp"]["max_us"] >= 0.0


class TestActivation:
    def test_activate_deactivate_roundtrip(self):
        assert telemetry.active() is None
        try:
            registry = telemetry.activate()
            assert telemetry.active() is registry
            assert telemetry.enabled()
        finally:
            telemetry.deactivate()
        assert not telemetry.enabled()
