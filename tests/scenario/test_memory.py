"""Tests for the declarative memory-model registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenario.memory import (
    build_memory,
    canonical_memory_spec,
    default_theoretical_gbps,
    memory_factory,
    memory_kinds,
    validate_memory_spec,
)


class TestRegistry:
    def test_all_models_registered(self):
        kinds = memory_kinds()
        for expected in (
            "cycle-accurate",
            "fixed-latency",
            "md1",
            "internal-ddr",
            "gem5-simple",
            "dramsim3-analog",
            "ramulator-analog",
            "ramulator2-analog",
            "cxl-expander",
            "optane",
            "remote-socket",
            "mess",
        ):
            assert expected in kinds

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown memory kind"):
            build_memory("sram", {})

    def test_unknown_param_rejected(self):
        problems = validate_memory_spec("fixed-latency", {"bogus": 1})
        assert problems and "bogus" in problems[0]


class TestCanonicalization:
    def test_timing_preset_expands_to_full_object(self):
        by_name = canonical_memory_spec(
            "cycle-accurate", {"timing": "DDR4-2666", "channels": 6}
        )
        by_dict = canonical_memory_spec(
            "cycle-accurate",
            {"timing": {"preset": "DDR4-2666"}, "channels": 6},
        )
        assert by_name == by_dict
        assert by_name["params"]["timing"]["name"] == "DDR4-2666"

    def test_mess_requires_curves(self):
        with pytest.raises(ConfigurationError, match="curves"):
            canonical_memory_spec("mess", {})


class TestBuild:
    def test_builds_cycle_accurate(self):
        model = build_memory(
            "cycle-accurate", {"timing": "DDR4-2666", "channels": 2}
        )
        assert model.controller.channels == 2

    def test_factory_returns_fresh_models(self):
        factory = memory_factory("fixed-latency", {"latency_ns": 50.0})
        assert factory() is not factory()

    def test_mess_platform_curves(self):
        model = build_memory(
            "mess",
            {"curves": {"platform": "Intel Skylake Xeon Platinum"}},
        )
        assert model is not None


class TestTheoreticalDefaults:
    def test_cycle_accurate_uses_timing_peak(self):
        value = default_theoretical_gbps(
            "cycle-accurate", {"timing": "DDR4-2666", "channels": 6}
        )
        assert value == pytest.approx(127.968)

    def test_explicit_peak_param_wins(self):
        value = default_theoretical_gbps(
            "md1", {"peak_bandwidth_gbps": 99.0, "unloaded_latency_ns": 80.0}
        )
        assert value == pytest.approx(99.0)
