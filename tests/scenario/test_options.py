"""Tests for the shared ``--opt`` / override parser."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenario.options import (
    apply_overrides,
    coerce_value,
    parse_assignments,
)


class TestCoerceValue:
    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            ("true", True),
            ("False", False),
            ("none", None),
            ("null", None),
            ("42", 42),
            ("-3", -3),
            ("2.5", 2.5),
            ("1e3", 1000.0),
            ("skylake", "skylake"),
            ('"42"', "42"),
            ("'quoted'", "quoted"),
            ("[1, 2, 3]", [1, 2, 3]),
            ("(0.0, 1.0)", (0.0, 1.0)),
            ("{'a': 1}", {"a": 1}),
        ],
    )
    def test_coercion_table(self, raw, expected):
        assert coerce_value(raw) == expected

    def test_unparseable_bracket_falls_back_to_string(self):
        assert coerce_value("[not python") == "[not python"


class TestParseAssignments:
    def test_parses_typed_pairs(self):
        parsed = parse_assignments(["cores=8", "name=sky", "flag=true"])
        assert parsed == {"cores": 8, "name": "sky", "flag": True}

    def test_dotted_keys_pass_through(self):
        assert parse_assignments(["system.cores=8"]) == {"system.cores": 8}

    def test_missing_equals_rejected(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_assignments(["noequalsign"])

    def test_empty_key_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_assignments(["=5"])


class TestApplyOverrides:
    def test_replaces_nested_leaf(self):
        payload = {"system": {"cores": 24}, "name": "x"}
        patched = apply_overrides(payload, {"system.cores": 8})
        assert patched["system"]["cores"] == 8
        assert payload["system"]["cores"] == 24  # original untouched

    def test_new_leaf_key_allowed(self):
        patched = apply_overrides({"options": {}}, {"options.memories": "ddr4"})
        assert patched["options"]["memories"] == "ddr4"

    def test_missing_intermediate_rejected(self):
        with pytest.raises(ConfigurationError, match="not an object"):
            apply_overrides({"name": "x"}, {"system.cores": 8})
