"""Tests for Scenario: round-trip, validation, overrides, materialize."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import MessBenchmarkConfig
from repro.errors import ConfigurationError
from repro.scenario import (
    characterization,
    load_scenario,
    preset_scenario,
    scenario_ids,
)
from repro.scenario.core import FORMAT_KEY, Scenario


def _tiny(name: str = "tiny") -> Scenario:
    return characterization(
        name=name,
        memory_kind="fixed-latency",
        memory_params={"latency_ns": 60.0},
        cores=2,
        sweep=MessBenchmarkConfig(
            store_fractions=(0.0, 1.0),
            nop_counts=(0, 600),
            warmup_ns=500.0,
            measure_ns=1500.0,
            chase_array_bytes=512 * 1024,
            traffic_array_bytes=512 * 1024,
        ),
    )


class TestRoundTrip:
    def test_spec_round_trip_preserves_digest(self):
        for name in scenario_ids():
            scenario = preset_scenario(name)
            rebuilt = Scenario.from_spec(scenario.to_spec())
            assert rebuilt.digest() == scenario.digest()

    def test_spec_survives_json_serialization(self):
        scenario = preset_scenario("skylake-substrate")
        payload = json.loads(json.dumps(scenario.to_spec()))
        assert Scenario.from_spec(payload).digest() == scenario.digest()

    def test_spec_carries_format_marker(self):
        assert preset_scenario("hbm-substrate").to_spec()[FORMAT_KEY] == 1

    def test_description_excluded_from_digest(self):
        a = _tiny()
        b = Scenario.from_spec({**a.to_spec(), "description": "different"})
        assert a.digest() == b.digest()

    def test_unknown_top_level_key_rejected(self):
        payload = {**_tiny().to_spec(), "bogus": 1}
        with pytest.raises(ConfigurationError, match="bogus"):
            Scenario.from_spec(payload)

    def test_wrong_format_version_rejected(self):
        payload = {**_tiny().to_spec(), FORMAT_KEY: 99}
        with pytest.raises(ConfigurationError, match="repro_scenario"):
            Scenario.from_spec(payload)


class TestValidation:
    def test_presets_validate_clean(self):
        for name in scenario_ids():
            assert preset_scenario(name).validate() == []

    def test_characterize_requires_memory(self):
        scenario = Scenario(name="no-memory")
        problems = scenario.validate()
        assert problems and "memory" in problems[0]

    def test_experiment_workload_validates_id(self):
        scenario = Scenario.for_experiment("nonexistent")
        problems = scenario.validate()
        assert any("nonexistent" in problem for problem in problems)

    def test_experiment_workload_rejects_system_section(self):
        scenario = Scenario.for_experiment("fig2")
        payload = scenario.to_spec()
        payload["system"] = {"cores": 4}
        with pytest.raises(ConfigurationError):
            Scenario.from_spec(payload)


class TestOverrides:
    def test_override_changes_digest(self):
        scenario = preset_scenario("skylake-substrate")
        patched = scenario.with_overrides({"system.cores": 8})
        assert patched.system.cores == 8
        assert patched.digest() != scenario.digest()

    def test_override_invalid_path_rejected(self):
        scenario = preset_scenario("skylake-substrate")
        with pytest.raises(ConfigurationError):
            scenario.with_overrides({"nope.deep.path": 1})


class TestMaterialize:
    def test_characterize_produces_curves(self):
        family = _tiny().materialize().characterize()
        assert family.max_bandwidth_gbps > 0
        assert family.unloaded_latency_ns > 0

    def test_experiment_scenario_does_not_materialize(self):
        with pytest.raises(ConfigurationError):
            Scenario.for_experiment("fig2").materialize()

    def test_run_tabulates_characterization(self):
        result = _tiny("tiny-run").run()
        assert result.rows
        assert set(result.columns) == {
            "series",
            "read_ratio",
            "bandwidth_gbps",
            "latency_ns",
        }


class TestLoadScenario:
    def test_loads_example_file(self, tmp_path):
        path = tmp_path / "scn.json"
        path.write_text(json.dumps(_tiny().to_spec()))
        assert load_scenario(path).digest() == _tiny().digest()

    def test_missing_file_is_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_scenario(tmp_path / "nope.json")

    def test_malformed_json_is_configuration_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_scenario(path)


class TestPresets:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            preset_scenario("bogus")

    def test_scale_densifies_sweep(self):
        small = preset_scenario("skylake-substrate", 1.0)
        large = preset_scenario("skylake-substrate", 2.0)
        assert len(large.sweep.nop_counts) > len(small.sweep.nop_counts)
        assert large.digest() != small.digest()
