"""Tests for the declarative ``cache=`` scenario axis.

The axis has one hard compatibility contract — the default cache model
must be digest-invisible (every pre-existing scenario digest is frozen
in ``test_digests.py``) — and one extension contract: any non-default
spelling must round-trip, produce a distinct stable digest, and mean
the same thing whether written as a preset name, an explicit mapping,
top-level sugar, or a dotted ``--opt cache.*=`` override.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import MessBenchmarkConfig
from repro.cpu.cachemodel import CacheModelSpec, cache_preset_names
from repro.cpu.system import SystemConfig
from repro.errors import ConfigurationError
from repro.scenario import characterization, preset_scenario
from repro.scenario.core import Scenario
from repro.scenario.options import parse_assignments


def _tiny(name: str = "tiny", cache: object | None = None) -> Scenario:
    return characterization(
        name=name,
        memory_kind="fixed-latency",
        memory_params={"latency_ns": 60.0},
        cores=2,
        sweep=MessBenchmarkConfig(
            store_fractions=(0.0,),
            nop_counts=(0,),
            warmup_ns=500.0,
            measure_ns=1500.0,
            chase_array_bytes=512 * 1024,
            traffic_array_bytes=512 * 1024,
        ),
        cache=cache,
    )


class TestDigestCompatibility:
    def test_default_cache_is_digest_invisible(self):
        base = _tiny()
        explicit = _tiny(cache="default")
        assert base.digest() == explicit.digest()
        assert "cache" not in base.to_spec()["system"]

    def test_default_system_spec_omits_cache_section(self):
        payload = SystemConfig().to_spec()
        assert "cache" not in payload

    def test_non_default_variants_are_distinct_and_stable(self):
        digests = {}
        variants = {
            "plru": {"policy": "plru"},
            "random": {"policy": "random"},
            "simu3": "simu3",
            "flat-llc": "flat-llc",
            "write-through": "write-through",
            "inclusive": {"inclusive": True},
            "wide-lines": {"line_bytes": 128},
        }
        for key, cache in variants.items():
            digest = _tiny(cache=cache).digest()
            assert digest == _tiny(cache=cache).digest()  # stable
            digests[key] = digest
        assert len(set(digests.values())) == len(digests)
        assert _tiny().digest() not in digests.values()

    def test_round_trip_preserves_non_default_digest(self):
        scenario = _tiny(cache="simu3")
        payload = json.loads(json.dumps(scenario.to_spec()))
        assert Scenario.from_spec(payload).digest() == scenario.digest()

    def test_preset_equals_explicit_spelling(self):
        from repro.cpu.cachemodel import CACHE_PRESETS

        for name in cache_preset_names():
            by_name = _tiny(cache=name).digest()
            by_mapping = _tiny(cache=dict(CACHE_PRESETS[name])).digest()
            assert by_name == by_mapping, name


class TestOverrides:
    def test_dotted_cache_override(self):
        patched = _tiny().with_overrides(
            parse_assignments(["cache.policy=plru"])
        )
        assert patched.system.cache.policy == "plru"
        assert patched.digest() != _tiny().digest()

    def test_cache_preset_override(self):
        patched = _tiny().with_overrides(parse_assignments(["cache=simu3"]))
        assert patched.system.cache.topology == "private-l1-shared-l2"
        assert patched.digest() == _tiny(cache="simu3").digest()

    def test_system_dotted_override(self):
        patched = _tiny().with_overrides(
            parse_assignments(["system.cache.line_bytes=128"])
        )
        assert patched.system.cache.line_bytes == 128

    def test_typo_rejected_loudly(self):
        with pytest.raises(ConfigurationError):
            _tiny().with_overrides(parse_assignments(["cache.polcy=plru"]))

    def test_bad_policy_rejected_loudly(self):
        with pytest.raises(ConfigurationError):
            _tiny().with_overrides(parse_assignments(["cache.policy=fifo"]))


class TestTopLevelSugar:
    def test_cache_sugar_folds_onto_system(self):
        payload = _tiny().to_spec()
        payload["cache"] = {"policy": "plru"}
        scenario = Scenario.from_spec(payload)
        assert scenario.system.cache.policy == "plru"
        assert scenario.digest() == _tiny(cache={"policy": "plru"}).digest()

    def test_cache_sugar_accepts_preset_string(self):
        payload = _tiny().to_spec()
        payload["cache"] = "write-through"
        scenario = Scenario.from_spec(payload)
        assert scenario.system.cache.write_policy == "write-through"

    def test_unknown_preset_rejected(self):
        payload = _tiny().to_spec()
        payload["cache"] = "no-such-model"
        with pytest.raises(ConfigurationError):
            Scenario.from_spec(payload)


class TestMaterialization:
    def test_policy_reaches_hierarchy(self):
        system = _tiny(cache={"policy": "plru"}).materialize().build_system()
        assert system.hierarchy.llc.policy == "plru"

    def test_seed_derived_from_spec_is_stable(self):
        a = _tiny(cache={"policy": "random"}).materialize().build_system()
        b = _tiny(cache={"policy": "random"}).materialize().build_system()
        assert a.hierarchy.llc.policy_seed == b.hierarchy.llc.policy_seed

    def test_distinct_systems_get_distinct_seeds(self):
        a = _tiny(cache={"policy": "random"}).materialize().build_system()
        b = (
            _tiny(cache={"policy": "random"})
            .with_overrides({"system.cores": 4})
            .materialize()
            .build_system()
        )
        assert a.hierarchy.llc.policy_seed != b.hierarchy.llc.policy_seed

    def test_explicit_seed_wins(self):
        spec = CacheModelSpec(policy="random", seed=77)
        scenario = _tiny(cache=spec)
        system = scenario.materialize().build_system()
        assert system.hierarchy.llc.policy_seed != 0
        rebuilt = Scenario.from_spec(scenario.to_spec()).materialize().build_system()
        assert rebuilt.hierarchy.llc.policy_seed == (
            system.hierarchy.llc.policy_seed
        )


class TestPresetScenariosStayValid:
    def test_presets_validate_clean_under_cache_rules(self):
        for name in ("skylake-substrate", "hbm-substrate"):
            assert preset_scenario(name).validate() == []
