"""Digest stability: golden values and generative properties.

The runner's cache keys are exactly ``Scenario.digest()``, so a digest
change invalidates every cached result for that scenario. The golden
tables pin today's digests; if one of these tests fails, either the
change was an intentional semantic change to the scenario encoding
(update the golden value and expect cold caches) or an accidental
encoding instability (fix it).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import MessBenchmarkConfig
from repro.experiments.registry import experiment_ids
from repro.scenario import characterization, preset_scenario
from repro.scenario.core import Scenario

GOLDEN_EXPERIMENT_DIGESTS = {
    "table1": "d0df1c4b0ae0d78cfee9710b3c3044bd2a17a1ff45caf2285dc234135dd44b64",
    "fig2": "60f806e6d16ba86a1fc2b09a7317822fdf80c5a4bce703d4554729ac04bf1999",
    "fig3": "5a8a651ea61fd1ddd9123f2a1ccb72a5d934340f732765e861c2ad34688f41f4",
    "fig4": "bbfebaba5e69d9beecd729c193ac59624595e2c9a1cfcb7abe789ff1f8950e60",
    "fig5": "d6bea344b9578984fdd4170953239ba20edf1cd58d17bb5804d9cb608819c07a",
    "fig6": "fcc3c406f0ea94db3ec8d9166eef4bf192da28d5bf5ae501c16a5d47bfd75352",
    "fig7": "77b966e1595cac21047468cb319175d86689ea1ff5dffd7a52164f8a27ba5818",
    "fig10": "a2aea1cc9fea36eeba42a50496f069282582b7fa164dc9c8a9f1abad0d466c33",
    "fig11": "401ab119f2ae0805cf5a273219ec233431ea3b15d7e6c4d791581d4721d175dc",
    "fig12": "304e3462390d383c5f18cbdab34af4ea5526f95f4aecdf7bc7300075d9d84718",
    "fig13": "ae110a4116c76801436657939831be4beb8ee5746359f3cd96fe98f21558c1c4",
    "fig14": "a1c8f47915dc0e61058890f6a3f60107b6877a65d41eecaa3fd7b3656bd71c8b",
    "fig15": "2128d33b84efd38ac7e8b8a23659bf05c05c5f4ac593fe9e5b0a270afb67eeba",
    "fig16": "87029b3e9fc953dac4cd89e41d7f67371a298c397fe8a0f3672221f4fa98e06b",
    "fig17": "5b537a129550fb0db171e1bdb5c6f6bcabf8fee7aa4209a0c6aa0bd62336e9dc",
    "fig18": "a4ec31ffea4ccaa6a0d29f1aaf9fa79f1e48a1f13d37ed959c51afa7391f83e9",
    "openpiton": "4642fb30ba7982796502809a2ce8e5134ff0cb9abd221fa979caf8b9be18704c",
    "optane": "6f479f046a12ca9011672cf82b22b17865a69fdeca3e871205ae9d3d3ef9c99e",
    "ablation": "8c1d8f1a967c132adac754b191464d79b3e99af8600dc9a384f88f16c61f067c",
    "wsweep": "618623bd98f1b7d3582b8653d87159aa027d1320df2bad63f78fb80d451ab91f",
    "thrash": "3444d516bf2181740307c13fd654ee6bce845c396ba8d9035187580bc8c69a40",
    "policydelta": "953e42e90400b56be99c6dcb7a0a95acd27210972a9a3a1cad326c3ee860160c",
}

GOLDEN_PRESET_DIGESTS = {
    "graviton-substrate": "189af8e16a2692bba5a37ccdae2b2f646df48576dd976825514e3404ecd60e2c",
    "graviton-substrate-2ch": "f30ab60a769326fee6ae18bfd37ed8bdf5e6396d8214d3e7598d85fa2ca4966e",
    "hbm-substrate": "3cab92625530f49a62b30c5d79547cfd644955e468d1b2ac69a507036b4c02e5",
    "skylake-substrate": "69a82c15c5881da8a1e865736be5071c0cffc5037179b0970f3d90d1f4e7ee27",
}


class TestGoldenDigests:
    def test_every_registered_experiment_has_a_golden_digest(self):
        assert set(GOLDEN_EXPERIMENT_DIGESTS) == set(experiment_ids())

    def test_experiment_digests_are_stable(self):
        for experiment_id, expected in GOLDEN_EXPERIMENT_DIGESTS.items():
            assert (
                Scenario.for_experiment(experiment_id).digest() == expected
            ), experiment_id

    def test_preset_digests_are_stable(self):
        for name, expected in GOLDEN_PRESET_DIGESTS.items():
            assert preset_scenario(name).digest() == expected, name


def _permute(payload: object, order: int) -> object:
    """Recursively re-order dict keys deterministically by ``order``."""
    if isinstance(payload, dict):
        keys = sorted(payload, reverse=bool(order % 2))
        if order % 3 == 0:
            keys = keys[::-1]
        return {key: _permute(payload[key], order + 1) for key in keys}
    if isinstance(payload, list):
        return [_permute(item, order) for item in payload]
    return payload


_SCENARIOS = st.builds(
    characterization,
    name=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz-0123456789", min_size=1, max_size=12
    ),
    memory_kind=st.just("fixed-latency"),
    memory_params=st.fixed_dictionaries(
        {"latency_ns": st.floats(min_value=1.0, max_value=500.0)}
    ),
    cores=st.integers(min_value=1, max_value=64),
    theoretical_bandwidth_gbps=st.one_of(
        st.none(), st.floats(min_value=1.0, max_value=1000.0)
    ),
    sweep=st.builds(
        MessBenchmarkConfig,
        store_fractions=st.just((0.0, 1.0)),
        nop_counts=st.just((0, 600)),
        warmup_ns=st.integers(min_value=100, max_value=5000).map(float),
        measure_ns=st.integers(min_value=1000, max_value=20000).map(float),
    ),
)


class TestDigestProperties:
    @settings(max_examples=30, deadline=None)
    @given(scenario=_SCENARIOS)
    def test_round_trip_digest_is_stable(self, scenario):
        rebuilt = Scenario.from_spec(scenario.to_spec())
        assert rebuilt.digest() == scenario.digest()
        assert rebuilt.to_spec() == scenario.to_spec()

    @settings(max_examples=30, deadline=None)
    @given(scenario=_SCENARIOS, order=st.integers(min_value=0, max_value=5))
    def test_digest_is_key_order_insensitive(self, scenario, order):
        shuffled = _permute(scenario.to_spec(), order)
        assert Scenario.from_spec(shuffled).digest() == scenario.digest()

    @settings(max_examples=30, deadline=None)
    @given(
        scenario=_SCENARIOS,
        latency=st.floats(min_value=501.0, max_value=999.0),
    )
    def test_changing_memory_params_changes_digest(self, scenario, latency):
        patched = scenario.with_overrides(
            {"memory.params.latency_ns": latency}
        )
        assert patched.digest() != scenario.digest()
