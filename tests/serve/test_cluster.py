"""The sharded fabric: partitioning, failover, hedging, drain, warm-up.

Chaos discipline throughout: every degraded-mode test asserts *digest
parity* — whoever answers, the payload must be digest-identical to a
local :meth:`Scenario.run` — because the fabric is allowed to trade
latency and locality for availability, never correctness.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.resilience.failures import ShardUnavailableError
from repro.runner.manifest import ExperimentRecord, RunManifest
from repro.serve.backends import DirectoryBackend, MemoryLRUBackend
from repro.serve.client import ConnectionPool, ServiceClient
from repro.serve.cluster import (
    ClusterConfig,
    ClusterRouter,
    LocalCluster,
    owner_shard,
)
from repro.serve.loadgen import loadgen_scenarios
from repro.serve.service import BadRequestError, warm_from_manifest


def fast_config(**overrides) -> ClusterConfig:
    """A cluster config tuned so chaos tests converge in milliseconds."""
    defaults = dict(
        probe_interval_s=0.05,
        probe_timeout_s=0.5,
        probe_failures=2,
        breaker_failures=1,
        breaker_reset_s=0.2,
        breaker_max_reset_s=1.0,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def with_cluster(coro_factory, shard_count=3, config=None, **kwargs):
    """Boot a LocalCluster + client, run the coroutine, tear down."""

    async def driver():
        cluster = LocalCluster(
            shard_count,
            cluster_config=config or fast_config(),
            **kwargs,
        )
        await cluster.start()
        client = ServiceClient(cluster.url)
        try:
            return await coro_factory(cluster, client)
        finally:
            await client.close()
            await cluster.close()

    return asyncio.run(driver())


class TestOwnerShard:
    def test_partition_is_total_and_in_range(self):
        digests = [format(n * 2654435761 % 2**64, "064x") for n in range(64)]
        for shards in (1, 2, 3, 5, 16):
            owners = [owner_shard(digest, shards) for digest in digests]
            assert all(0 <= owner < shards for owner in owners)

    def test_partition_is_contiguous_by_prefix(self):
        # leading 32 bits of 0 -> shard 0; of all-ones -> last shard
        assert owner_shard("00" * 32, 3) == 0
        assert owner_shard("ff" * 32, 3) == 2

    def test_every_shard_owns_some_range(self):
        digests = [format(n, "08x") + "0" * 56 for n in range(0, 2**32, 2**26)]
        assert {owner_shard(d, 4) for d in digests} == {0, 1, 2, 3}

    def test_deterministic_across_calls(self):
        digest = loadgen_scenarios(1)[0].digest()
        assert owner_shard(digest, 7) == owner_shard(digest, 7)

    def test_rejects_non_hex_and_bad_counts(self):
        with pytest.raises(BadRequestError):
            owner_shard("not-a-digest", 3)
        with pytest.raises(ConfigurationError):
            owner_shard("ab" * 32, 0)


class TestClusterConfig:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(max_inflight=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(queue_limit=-1)
        with pytest.raises(ConfigurationError):
            ClusterConfig(deadline_s=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(hedge_delay_ms=-1)

    def test_router_rejects_empty_and_duplicate_shards(self):
        with pytest.raises(ConfigurationError):
            ClusterRouter([])
        with pytest.raises(ConfigurationError):
            ClusterRouter(["http://h:1", "http://h:1/"])


class TestRoundTrip:
    def test_routed_submit_matches_local_digest(self):
        scenario = loadgen_scenarios(1)[0]
        spec = scenario.to_spec()

        async def exercise(cluster, client):
            first = await client.submit("characterize", spec)
            second = await client.submit("characterize", spec)
            return first, second, cluster.router.stats()

        first, second, stats = with_cluster(exercise)
        assert first["routed"] is True
        assert first["digest"] == scenario.digest()
        assert second["cached"] is True
        assert second["digest"] == first["digest"]
        assert stats["role"] == "router"
        assert stats["counters"]["serve.requests"] == 2
        assert stats["counters"]["serve.forwarded"] == 2
        assert stats["counters"]["serve.failovers"] == 0
        assert len(stats["shards"]) == 3

    def test_lookup_routes_to_the_owner(self):
        spec = loadgen_scenarios(1)[0].to_spec()

        async def exercise(cluster, client):
            submitted = await client.submit("characterize", spec)
            looked_up = await client.lookup(submitted["digest"])
            return submitted, looked_up

        submitted, looked_up = with_cluster(exercise)
        assert looked_up["result"] == submitted["result"]

    def test_requests_spread_across_shards(self):
        scenarios = loadgen_scenarios(8)

        async def exercise(cluster, client):
            for scenario in scenarios:
                await client.submit("characterize", scenario.to_spec())
            return cluster.router.stats()

        stats = with_cluster(exercise)
        touched = [s for s in stats["shards"] if s["forwarded"] > 0]
        # 8 digests over 3 ranges: at least two shards must own some
        assert len(touched) >= 2

    def test_router_healthz_names_its_role(self):
        async def exercise(cluster, client):
            return await client.healthz()

        health = with_cluster(exercise)
        assert health["ok"] is True
        assert health["role"] == "router"
        assert health["shards"] == 3


class TestChaos:
    def test_killed_shard_fails_over_with_digest_parity(self, tmp_path):
        scenarios = loadgen_scenarios(6)

        async def exercise(cluster, client):
            for scenario in scenarios:
                await client.submit("characterize", scenario.to_spec())
            # SIGKILL stand-in: one shard's listener just vanishes
            await cluster.kill_shard(0)
            survivors = []
            for scenario in scenarios:
                survivors.append(
                    await client.submit("characterize", scenario.to_spec())
                )
            return survivors, cluster.router.stats()

        survivors, stats = with_cluster(
            exercise, backend="dir", cache_dir=str(tmp_path)
        )
        # zero wrong-digest responses, despite the dead shard
        for scenario, response in zip(scenarios, survivors):
            assert response["digest"] == scenario.digest()
        counters = stats["counters"]
        assert counters["serve.errors"] == 0
        assert counters["serve.failovers"] > 0
        assert counters["serve.breaker_opens"] >= 1
        dead = stats["shards"][0]
        assert dead["breaker"]["state"] == "open"

    def test_shared_store_turns_failover_into_hits(self, tmp_path):
        scenario = loadgen_scenarios(1)[0]
        spec = scenario.to_spec()

        async def exercise(cluster, client):
            first = await client.submit("characterize", spec)
            owner = owner_shard(scenario.digest(), 3)
            await cluster.kill_shard(owner)
            second = await client.submit("characterize", spec)
            return first, second

        first, second = with_cluster(
            exercise, backend="dir", cache_dir=str(tmp_path)
        )
        assert first["digest"] == second["digest"] == scenario.digest()
        # the fallback shard reads the dead owner's entry from the
        # shared durable store — failover costs locality, not compute
        assert second["cached"] is True

    def test_health_probe_marks_a_dead_shard_down(self):
        async def exercise(cluster, client):
            url = await cluster.kill_shard(1)
            router = cluster.router
            for _ in range(100):
                snapshot = router.health.snapshot()[url]
                if snapshot["healthy"] is False:
                    return snapshot
                await asyncio.sleep(0.05)
            raise AssertionError("probe loop never marked the shard down")

        snapshot = with_cluster(exercise)
        assert snapshot["healthy"] is False
        assert snapshot["consecutive_failures"] >= 2

    def test_all_shards_dead_is_a_typed_503(self):
        spec = loadgen_scenarios(1)[0].to_spec()

        async def exercise(cluster, client):
            for index in range(3):
                await cluster.kill_shard(index)
            with pytest.raises(Exception) as excinfo:
                await cluster.router.submit("characterize", spec)
            return excinfo.value

        exc = with_cluster(exercise)
        assert isinstance(exc, ShardUnavailableError)


class TestDrain:
    def test_drained_shard_reports_and_router_reroutes(self, tmp_path):
        spec = loadgen_scenarios(1)[0].to_spec()

        async def exercise(cluster, client):
            await client.submit("characterize", spec)
            owner = owner_shard(
                loadgen_scenarios(1)[0].digest(), 3
            )
            summary = await cluster.drain_shard(owner)
            after = await client.submit("characterize", spec)
            return summary, after

        summary, after = with_cluster(
            exercise, backend="dir", cache_dir=str(tmp_path)
        )
        assert summary["drained"] is True
        assert after["digest"] == loadgen_scenarios(1)[0].digest()

    def test_router_drain_stops_admission(self):
        spec = loadgen_scenarios(1)[0].to_spec()

        async def exercise(cluster, client):
            router = cluster.router
            summary = await router.drain(timeout_s=5.0)
            payload = router.health_payload()
            with pytest.raises(ShardUnavailableError):
                await router.submit("characterize", spec)
            return summary, payload, router.stats()

        summary, payload, stats = with_cluster(exercise)
        assert summary["drained"] is True
        assert summary["abandoned_in_flight"] == 0
        assert payload["ok"] is False and payload["draining"] is True
        assert stats["counters"]["serve.rejected"] == 1


class TestHedging:
    def test_hedged_read_still_digest_consistent(self):
        scenario = loadgen_scenarios(1)[0]

        async def exercise(cluster, client):
            # hedge_delay_ms=0 hedges every request deterministically
            response = await client.submit(
                "characterize", scenario.to_spec()
            )
            return response, cluster.router.stats()

        response, stats = with_cluster(
            exercise,
            config=fast_config(hedge=True, hedge_delay_ms=0.0),
        )
        assert response["digest"] == scenario.digest()
        assert stats["counters"]["serve.hedged"] >= 1

    def test_hedge_races_past_a_dead_owner(self, tmp_path):
        scenario = loadgen_scenarios(1)[0]

        async def exercise(cluster, client):
            await client.submit("characterize", scenario.to_spec())
            await cluster.kill_shard(owner_shard(scenario.digest(), 3))
            response = await client.submit(
                "characterize", scenario.to_spec()
            )
            return response

        response = with_cluster(
            exercise,
            config=fast_config(hedge=True, hedge_delay_ms=5.0),
            backend="dir",
            cache_dir=str(tmp_path),
        )
        assert response["digest"] == scenario.digest()


class TestConnectionPool:
    def test_keep_alive_reuses_connections(self):
        spec = loadgen_scenarios(1)[0].to_spec()

        async def exercise(cluster, client):
            for _ in range(4):
                await client.submit("characterize", spec)
            return cluster.router.pool.stats()

        stats = with_cluster(exercise, shard_count=1)
        # the router's forwards after the first ride pooled sockets
        assert stats["reuses"] >= 2
        assert stats["dials"] < stats["dials"] + stats["reuses"]

    def test_pool_is_shared_across_shard_clients(self):
        async def exercise(cluster, client):
            router = cluster.router
            pools = {id(shard.client.pool) for shard in router.shards}
            pools.add(id(router.pool))
            return pools

        pools = with_cluster(exercise)
        assert len(pools) == 1

    def test_discarded_connections_redial(self):
        async def exercise(cluster, client):
            url = cluster.shard_urls[0]
            probe = ServiceClient(url, pool=ConnectionPool())
            await probe.healthz()
            await probe.pool.close()
            # a fresh pool after close() must dial again, not explode
            probe2 = ServiceClient(url, pool=ConnectionPool())
            health = await probe2.healthz()
            await probe2.pool.close()
            return health

        health = with_cluster(exercise, shard_count=1)
        assert health["ok"] is True


class TestWarm:
    def test_warm_from_manifest_preseeds_the_backend(self, tmp_path):
        scenario = loadgen_scenarios(1)[0]
        digest = scenario.digest()
        source = DirectoryBackend(tmp_path / "runner-cache")
        source.put(digest, scenario.run().to_dict(), kind="scenario-result")
        manifest = RunManifest(jobs=1, package_version="test")
        manifest.records.append(
            ExperimentRecord(
                experiment_id=f"scenario:{scenario.name}",
                status="ok",
                scenario_spec=scenario.to_spec(),
            )
        )
        manifest.records.append(
            ExperimentRecord(experiment_id="scenario:crashed", status="error")
        )
        path = tmp_path / "MANIFEST.json"
        manifest.write(path)

        backend = MemoryLRUBackend()
        summary = warm_from_manifest(backend, path, source=source)
        assert summary["warmed"] == 1
        assert summary["missing"] == 0
        assert backend.get(digest) is not None
        # idempotent: a second warm finds everything already present
        again = warm_from_manifest(backend, path, source=source)
        assert again["already_present"] == 1
        assert again["warmed"] == 0

    def test_warm_counts_missing_payloads(self, tmp_path):
        scenario = loadgen_scenarios(1)[0]
        manifest = RunManifest(jobs=1, package_version="test")
        manifest.records.append(
            ExperimentRecord(
                experiment_id=f"scenario:{scenario.name}",
                status="ok",
                scenario_spec=scenario.to_spec(),
            )
        )
        path = tmp_path / "MANIFEST.json"
        manifest.write(path)
        empty_source = DirectoryBackend(tmp_path / "empty")
        summary = warm_from_manifest(
            MemoryLRUBackend(), path, source=empty_source
        )
        assert summary["missing"] == 1
        assert summary["warmed"] == 0
