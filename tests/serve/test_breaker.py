"""The circuit breaker state machine, driven by a fake clock."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(clock, **kwargs):
    defaults = dict(
        failure_threshold=3,
        reset_timeout_s=1.0,
        max_reset_timeout_s=30.0,
        clock=clock,
    )
    defaults.update(kwargs)
    return CircuitBreaker("shard-0", **defaults)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow() is True

    def test_trips_open_after_threshold_consecutive_failures(self):
        breaker = make_breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.allow() is False

    def test_success_resets_the_consecutive_count(self):
        breaker = make_breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_becomes_half_open_after_the_reset_timeout(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        # the deterministic backoff delay is bounded by the jittered
        # base; advancing past the max for trip 1 must re-admit probes
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow() is True

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow() is True
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() is True

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.allow() is False

    def test_half_open_admits_only_the_probe_budget(self):
        clock = FakeClock()
        breaker = make_breaker(clock, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow() is True
        assert breaker.allow() is False  # second concurrent probe refused

    def test_backoff_grows_with_consecutive_trips(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        delays = []
        for _ in range(3):
            for _ in range(3):
                breaker.record_failure()
            delays.append(breaker.snapshot()["retry_in_s"])
            clock.advance(delays[-1] + 0.001)
            assert breaker.state == HALF_OPEN
            breaker.record_failure()  # probe fails: next trip
        # exponential backoff: every later open interval is at least as
        # long as the first (jitter is deterministic, never negative)
        assert delays[0] > 0
        assert delays[2] >= delays[0]

    def test_backoff_is_deterministic_per_seed(self):
        def trip_delay(seed):
            breaker = make_breaker(FakeClock(), seed=seed)
            for _ in range(3):
                breaker.record_failure()
            return breaker.snapshot()["retry_in_s"]

        assert trip_delay(0) == trip_delay(0)
        assert trip_delay(0) != trip_delay(7)

    def test_on_open_fires_per_transition(self):
        clock = FakeClock()
        opened = []
        breaker = make_breaker(clock, on_open=opened.append)
        for _ in range(3):
            breaker.record_failure()
        assert len(opened) == 1 and opened[0] is breaker
        clock.advance(2.0)
        breaker.record_failure()  # half-open probe failure -> reopen
        assert len(opened) == 2

    def test_snapshot_is_json_ready(self):
        import json

        breaker = make_breaker(FakeClock())
        breaker.record_failure()
        snapshot = json.loads(json.dumps(breaker.snapshot()))
        assert snapshot["state"] == CLOSED
        assert snapshot["consecutive_failures"] == 1
        assert snapshot["failure_threshold"] == 3

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            make_breaker(FakeClock(), failure_threshold=0)
        with pytest.raises(ConfigurationError):
            make_breaker(FakeClock(), reset_timeout_s=0.0)
