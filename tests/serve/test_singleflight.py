"""Single-flight coalescing: one compute per key, however many askers."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.singleflight import SingleFlight


def test_thundering_herd_computes_once():
    async def scenario():
        flights = SingleFlight()
        computes = 0
        gate = asyncio.Event()

        async def compute():
            nonlocal computes
            computes += 1
            await gate.wait()
            return {"value": computes}

        tasks = [
            asyncio.ensure_future(flights.run("key", compute))
            for _ in range(50)
        ]
        await asyncio.sleep(0)  # let every waiter join the flight
        gate.set()
        outcomes = await asyncio.gather(*tasks)
        return computes, outcomes, flights

    computes, outcomes, flights = asyncio.run(scenario())
    assert computes == 1
    assert all(payload == {"value": 1} for payload, _followed in outcomes)
    followed = sum(1 for _payload, followed in outcomes if followed)
    assert followed == 49
    assert flights.leaders == 1
    assert flights.followers == 49
    assert flights.in_flight == 0


def test_sequential_runs_compute_each_time():
    async def scenario():
        flights = SingleFlight()
        computes = 0

        async def compute():
            nonlocal computes
            computes += 1
            return computes

        first = await flights.run("key", compute)
        second = await flights.run("key", compute)
        return first, second, flights

    first, second, flights = asyncio.run(scenario())
    assert first == (1, False)
    assert second == (2, False)
    assert flights.leaders == 2
    assert flights.followers == 0


def test_distinct_keys_fly_independently():
    async def scenario():
        flights = SingleFlight()
        gate = asyncio.Event()

        async def compute(value):
            await gate.wait()
            return value

        tasks = [
            asyncio.ensure_future(flights.run(str(n), lambda n=n: compute(n)))
            for n in range(4)
        ]
        await asyncio.sleep(0)
        assert flights.in_flight == 4
        gate.set()
        return await asyncio.gather(*tasks), flights

    outcomes, flights = asyncio.run(scenario())
    assert [payload for payload, _ in outcomes] == [0, 1, 2, 3]
    assert flights.leaders == 4


def test_failure_propagates_to_every_waiter():
    async def scenario():
        flights = SingleFlight()
        gate = asyncio.Event()

        async def compute():
            await gate.wait()
            raise ValueError("boom")

        tasks = [
            asyncio.ensure_future(flights.run("key", compute))
            for _ in range(5)
        ]
        await asyncio.sleep(0)
        gate.set()
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        # a failed flight must not be cached: the next run re-computes
        async def recover():
            return "fresh"

        retry = await flights.run("key", recover)
        return outcomes, retry

    outcomes, retry = asyncio.run(scenario())
    assert len(outcomes) == 5
    assert all(isinstance(outcome, ValueError) for outcome in outcomes)
    assert retry == ("fresh", False)


def test_cancelled_follower_does_not_kill_the_flight():
    async def scenario():
        flights = SingleFlight()
        gate = asyncio.Event()

        async def compute():
            await gate.wait()
            return "landed"

        leader = asyncio.ensure_future(flights.run("key", compute))
        follower = asyncio.ensure_future(flights.run("key", compute))
        await asyncio.sleep(0)
        follower.cancel()
        with pytest.raises(asyncio.CancelledError):
            await follower
        gate.set()
        return await leader

    assert asyncio.run(scenario()) == ("landed", False)
