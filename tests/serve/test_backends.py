"""Cache backends: the same digest-keyed contract over every store.

The backends are interchangeable by construction — any payload stored
under a digest must round-trip byte-identically (same canonical JSON,
same :func:`repro.runner.cache.stable_digest`) whichever backend holds
it, corruption must quarantine instead of raising, and concurrent
writers of the same digest must never tear an entry.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.runner.cache import stable_digest
from repro.serve.backends import (
    DirectoryBackend,
    MemoryLRUBackend,
    SqliteBackend,
    TieredBackend,
    make_backend,
)

KEY = "ab" * 32
OTHER = "cd" * 32
PAYLOAD = {
    "experiment_id": "scenario:x",
    "columns": ["series", "read_ratio"],
    "rows": [["a", 1.0], ["b", 0.5]],
}


def all_backends(tmp_path):
    return [
        DirectoryBackend(tmp_path / "dir"),
        SqliteBackend(tmp_path / "store.sqlite"),
        MemoryLRUBackend(),
        TieredBackend(
            [MemoryLRUBackend(), DirectoryBackend(tmp_path / "tiered")]
        ),
    ]


class TestContract:
    def test_round_trip_is_digest_identical_everywhere(self, tmp_path):
        digests = set()
        for backend in all_backends(tmp_path):
            assert backend.put(KEY, PAYLOAD, kind="scenario-result")
            stored = backend.get(KEY)
            assert stored == PAYLOAD
            digests.add(stable_digest(stored))
            backend.close()
        assert len(digests) == 1

    def test_miss_returns_none_and_counts(self, tmp_path):
        for backend in all_backends(tmp_path):
            assert backend.get(KEY) is None
            assert backend.misses == 1
            assert backend.hits == 0
            backend.close()

    def test_discard_and_keys(self, tmp_path):
        for backend in all_backends(tmp_path):
            backend.put(KEY, PAYLOAD)
            backend.put(OTHER, {"x": 1})
            assert sorted(backend.keys()) == sorted([KEY, OTHER])
            backend.discard(KEY)
            assert backend.get(KEY) is None
            assert backend.get(OTHER) == {"x": 1}
            backend.close()

    def test_clear_empties_every_backend(self, tmp_path):
        for backend in all_backends(tmp_path):
            backend.put(KEY, PAYLOAD)
            assert backend.clear() >= 1
            assert backend.get(KEY) is None
            backend.close()

    def test_info_keys_are_uniform(self, tmp_path):
        required = {
            "backend",
            "location",
            "entries",
            "bytes",
            "kinds",
            "kind_bytes",
            "shards",
            "corrupt_entries",
            "corrupt_bytes",
        }
        for backend in all_backends(tmp_path):
            backend.put(KEY, PAYLOAD, kind="result")
            if isinstance(backend, TieredBackend):
                backend.flush()  # shards are read from the durable tier
            info = backend.info()
            assert required <= set(info)
            assert info["entries"] == 1
            assert info["shards"]["count"] == 1
            backend.close()

    def test_sqlite_and_dir_round_trips_agree(self, tmp_path):
        via_dir = DirectoryBackend(tmp_path / "d")
        via_sql = SqliteBackend(tmp_path / "s.sqlite")
        via_dir.put(KEY, PAYLOAD)
        via_sql.put(KEY, PAYLOAD)
        assert stable_digest(via_dir.get(KEY)) == stable_digest(
            via_sql.get(KEY)
        )
        via_sql.close()


class TestCorruption:
    def test_dir_quarantines_corrupt_entry(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        backend.put(KEY, PAYLOAD)
        path = backend.path_for(KEY)
        path.write_text("{not json")
        assert backend.get(KEY) is None
        assert backend.quarantined == 1
        assert not path.exists()
        (moved,) = list(backend.corrupt_entries())
        assert moved.name.endswith(".corrupt")
        assert backend.info()["corrupt_entries"] == 1

    def test_sqlite_quarantines_corrupt_row(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite")
        backend.put(KEY, PAYLOAD)
        with backend._lock:
            backend._connection().execute(
                "UPDATE entries SET payload = ? WHERE key = ?",
                ("{not json", KEY),
            )
            backend._connection().commit()
        assert backend.get(KEY) is None
        assert backend.quarantined == 1
        assert backend.info()["corrupt_entries"] == 1
        # quarantined entries are not resurrected
        assert backend.get(KEY) is None
        backend.close()


class TestConcurrency:
    def test_parallel_writers_same_digest_never_tear(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        payloads = [{"writer": n, "rows": [n] * 50} for n in range(8)]
        barrier = threading.Barrier(8)

        def write(payload):
            barrier.wait()
            for _ in range(25):
                assert backend.put(KEY, payload)

        threads = [
            threading.Thread(target=write, args=(payload,))
            for payload in payloads
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # the winner is some writer's payload, intact — never a mix
        stored = backend.get(KEY)
        assert stored in payloads

    def test_parallel_sqlite_writers(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite")
        errors = []

        def write(n):
            try:
                for _ in range(20):
                    backend.put(KEY, {"writer": n})
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(n,)) for n in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert backend.get(KEY) in [{"writer": n} for n in range(6)]
        backend.close()


class TestMemoryLRU:
    def test_eviction_under_entry_pressure(self):
        backend = MemoryLRUBackend(max_entries=3)
        keys = [format(n, "064x") for n in range(5)]
        for n, key in enumerate(keys):
            backend.put(key, {"n": n})
        assert backend.evictions == 2
        assert backend.get(keys[0]) is None
        assert backend.get(keys[-1]) == {"n": 4}

    def test_get_refreshes_recency(self):
        backend = MemoryLRUBackend(max_entries=2)
        a, b, c = (format(n, "064x") for n in range(3))
        backend.put(a, {"k": "a"})
        backend.put(b, {"k": "b"})
        assert backend.get(a) == {"k": "a"}  # a is now most recent
        backend.put(c, {"k": "c"})  # evicts b, not a
        assert backend.get(a) == {"k": "a"}
        assert backend.get(b) is None

    def test_byte_budget_eviction(self):
        backend = MemoryLRUBackend(max_entries=100, max_bytes=200)
        keys = [format(n, "064x") for n in range(10)]
        for key in keys:
            backend.put(key, {"blob": "x" * 40})
        info = backend.info()
        assert info["bytes"] <= 200
        assert backend.evictions > 0

    def test_stored_payloads_are_isolated(self):
        backend = MemoryLRUBackend()
        payload = {"rows": [1, 2]}
        backend.put(KEY, payload)
        payload["rows"].append(3)  # caller mutates after put
        assert backend.get(KEY) == {"rows": [1, 2]}
        backend.get(KEY)["rows"].append(9)  # caller mutates a get
        assert backend.get(KEY) == {"rows": [1, 2]}


class TestTiered:
    def test_read_through_promotes_to_fast_tier(self, tmp_path):
        fast = MemoryLRUBackend()
        slow = DirectoryBackend(tmp_path)
        slow.put(KEY, PAYLOAD)
        tiered = TieredBackend([fast, slow])
        assert tiered.get(KEY) == PAYLOAD
        assert tiered.promotions == 1
        assert fast.get(KEY) == PAYLOAD  # promoted

    def test_write_back_defers_then_flushes(self, tmp_path):
        fast = MemoryLRUBackend()
        slow = DirectoryBackend(tmp_path)
        tiered = TieredBackend([fast, slow], write_policy="write-back")
        tiered.put(KEY, PAYLOAD, kind="result")
        assert fast.get(KEY) == PAYLOAD
        assert slow.get(KEY) is None  # not yet landed
        assert tiered.pending_writes == 1
        assert tiered.flush() == 1
        assert slow.get(KEY) == PAYLOAD
        assert tiered.pending_writes == 0

    def test_write_through_lands_everywhere_immediately(self, tmp_path):
        fast = MemoryLRUBackend()
        slow = DirectoryBackend(tmp_path)
        tiered = TieredBackend([fast, slow], write_policy="write-through")
        tiered.put(KEY, PAYLOAD)
        assert slow.get(KEY) == PAYLOAD
        assert tiered.pending_writes == 0

    def test_requires_a_tier(self):
        with pytest.raises(ConfigurationError):
            TieredBackend([])
        with pytest.raises(ConfigurationError):
            TieredBackend([MemoryLRUBackend()], write_policy="sometimes")


class TestSqliteRetention:
    KEYS = [format(n, "064x") for n in range(5)]

    def test_ttl_expires_lazily_on_read(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite", ttl_s=10.0)
        now = [1000.0]
        backend._clock = lambda: now[0]
        backend.put(KEY, PAYLOAD)
        assert backend.get(KEY) == PAYLOAD
        now[0] += 11.0
        assert backend.get(KEY) is None
        assert backend.expired == 1
        # the expired row is gone, not resurrected
        assert backend.get(KEY) is None
        assert backend.expired == 1
        backend.close()

    def test_high_water_evicts_oldest_first(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite", max_entries=3)
        now = [0.0]
        backend._clock = lambda: now[0]
        for n, key in enumerate(self.KEYS):
            now[0] = float(n)
            backend.put(key, {"n": n})
        assert backend.evictions == 2
        assert backend.get(self.KEYS[0]) is None
        assert backend.get(self.KEYS[1]) is None
        assert backend.get(self.KEYS[-1]) == {"n": 4}
        assert backend.info()["entries"] == 3
        backend.close()

    def test_purge_expired_bulk_deletes(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite", ttl_s=5.0)
        now = [100.0]
        backend._clock = lambda: now[0]
        for key in self.KEYS:
            backend.put(key, PAYLOAD)
        now[0] += 6.0
        assert backend.purge_expired() == 5
        assert backend.expired == 5
        assert backend.info()["entries"] == 0
        # without a TTL, purge is a no-op by definition
        plain = SqliteBackend(tmp_path / "p.sqlite")
        assert plain.purge_expired() == 0
        plain.close()
        backend.close()

    def test_retention_counters_survive_reopen(self, tmp_path):
        path = tmp_path / "s.sqlite"
        backend = SqliteBackend(path, ttl_s=5.0, max_entries=2)
        now = [0.0]
        backend._clock = lambda: now[0]
        for n, key in enumerate(self.KEYS[:3]):
            now[0] = float(n)
            backend.put(key, PAYLOAD)  # third put evicts one
        now[0] += 10.0
        backend.get(self.KEYS[2])  # expires one
        assert (backend.evictions, backend.expired) == (1, 1)
        backend.close()
        reopened = SqliteBackend(path, ttl_s=5.0, max_entries=2)
        # the connection (and the persisted counters) load on first use
        info = reopened.info()
        assert info["evictions"] == 1
        assert info["expired"] == 1
        assert reopened.evictions == 1
        reopened.close()

    def test_legacy_rows_are_ttl_exempt(self, tmp_path):
        path = tmp_path / "s.sqlite"
        backend = SqliteBackend(path)
        backend.put(KEY, PAYLOAD)
        with backend._lock:
            # a row migrated from a pre-retention store has created_at=0
            backend._connection().execute(
                "UPDATE entries SET created_at = 0 WHERE key = ?", (KEY,)
            )
            backend._connection().commit()
        backend.close()
        aged = SqliteBackend(path, ttl_s=0.001)
        assert aged.get(KEY) == PAYLOAD
        assert aged.expired == 0
        aged.close()

    def test_info_reports_retention(self, tmp_path):
        backend = SqliteBackend(
            tmp_path / "s.sqlite", ttl_s=60.0, max_entries=10
        )
        info = backend.info()
        assert info["ttl_s"] == 60.0
        assert info["max_entries"] == 10
        assert info["expired"] == 0
        assert info["evictions"] == 0
        backend.close()

    def test_rejects_bad_retention_config(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SqliteBackend(tmp_path / "a.sqlite", ttl_s=0)
        with pytest.raises(ConfigurationError):
            SqliteBackend(tmp_path / "b.sqlite", max_entries=0)

    def test_make_backend_threads_retention_to_sqlite_tiers(self, tmp_path):
        stack = make_backend(
            "memory,sqlite", tmp_path / "s", ttl_s=60.0, max_entries=9
        )
        memory_tier, sqlite_tier = stack.tiers
        assert sqlite_tier.ttl_s == 60.0
        assert sqlite_tier.max_entries == 9
        assert not hasattr(memory_tier, "ttl_s")
        stack.close()


class TestMakeBackend:
    def test_named_specs(self, tmp_path):
        assert make_backend("dir", tmp_path / "a").kind == "dir"
        sql = make_backend("sqlite", tmp_path / "b")
        assert sql.kind == "sqlite"
        sql.close()
        assert make_backend("memory", tmp_path / "c").kind == "memory"

    def test_tiered_alias_and_stacks(self, tmp_path):
        tiered = make_backend("tiered", tmp_path)
        assert tiered.kind == "tiered"
        assert [tier.kind for tier in tiered.tiers] == ["memory", "dir"]
        stack = make_backend("memory,sqlite", tmp_path / "s")
        assert [tier.kind for tier in stack.tiers] == ["memory", "sqlite"]
        stack.close()

    def test_unknown_spec_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            make_backend("redis", tmp_path)

    def test_round_trip_matches_canonical_json(self, tmp_path):
        backend = make_backend("tiered", tmp_path)
        backend.put(KEY, PAYLOAD)
        canonical = json.dumps(PAYLOAD, sort_keys=True)
        assert json.dumps(backend.get(KEY), sort_keys=True) == canonical
