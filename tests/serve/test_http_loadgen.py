"""End-to-end: HTTP transport, client, and the load generator."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.backends import MemoryLRUBackend
from repro.serve.client import ResponseError, ServiceClient
from repro.serve.http import HttpServer
from repro.serve.loadgen import (
    LoadgenConfig,
    loadgen_scenarios,
    run_loadgen,
    _schedule,
)
from repro.serve.service import CharacterizationService


def with_server(coro_factory, config=None):
    """Boot an ephemeral-port server, run the coroutine, tear down."""

    async def driver():
        service = CharacterizationService(
            config=config, backend=None if config else MemoryLRUBackend()
        )
        server = HttpServer(service, port=0)
        await server.start()
        client = ServiceClient(server.url)
        try:
            return await coro_factory(server, client)
        finally:
            await client.close()
            await server.close()

    return asyncio.run(driver())


class TestHttp:
    def test_health_submit_lookup_round_trip(self):
        scenario = loadgen_scenarios(1)[0]
        spec = scenario.to_spec()

        async def exercise(server, client):
            health = await client.healthz()
            submitted = await client.submit("characterize", spec)
            again = await client.submit("characterize", spec)
            looked_up = await client.lookup(submitted["digest"])
            stats = await client.stats()
            return health, submitted, again, looked_up, stats

        health, submitted, again, looked_up, stats = with_server(exercise)
        assert health == {"ok": True, "draining": False}
        assert submitted["cached"] is False
        assert again["cached"] is True
        assert looked_up["result"] == submitted["result"]
        assert stats["counters"]["serve.computed"] == 1
        assert submitted["digest"] == scenario.digest()

    def test_error_statuses_reach_the_client(self):
        async def exercise(server, client):
            statuses = {}
            for method, path, payload in [
                ("POST", "/v1/explode", {"x": 1}),
                ("POST", "/v1/characterize", {"bad": "spec"}),
                ("GET", "/v1/result/" + "ab" * 32, None),
                ("GET", "/nope", None),
                ("PUT", "/healthz", None),
            ]:
                with pytest.raises(ResponseError) as excinfo:
                    await client.request(method, path, payload)
                statuses[(method, path)] = excinfo.value.status
            return statuses

        statuses = with_server(exercise)
        assert statuses[("POST", "/v1/explode")] == 400
        assert statuses[("POST", "/v1/characterize")] == 400
        assert statuses[("GET", "/v1/result/" + "ab" * 32)] == 404
        assert statuses[("GET", "/nope")] == 404
        assert statuses[("PUT", "/healthz")] == 405

    def test_metrics_endpoint_speaks_prometheus(self):
        async def exercise(server, client):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(
                b"GET /metrics HTTP/1.1\r\nHost: x\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw.decode("utf-8")

        text = with_server(exercise)
        assert "200 OK" in text.splitlines()[0]
        assert "repro_serve_requests_total" in text

    def test_non_json_body_is_a_400_not_a_drop(self):
        async def exercise(server, client):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            body = b"this is not json"
            writer.write(
                b"POST /v1/characterize HTTP/1.1\r\nHost: x\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            writer.close()
            return head.decode("latin-1")

        head = with_server(exercise)
        assert " 400 " in head.splitlines()[0]


class TestLoadgen:
    def test_schedule_is_deterministic(self):
        config = LoadgenConfig(scenarios=4, requests=32)
        assert _schedule(config, 1) == _schedule(config, 1)
        assert _schedule(config, 1) != _schedule(config, 2)
        assert all(0 <= index < 4 for index in _schedule(config, 1))

    def test_two_pass_run_hits_cache_and_stays_consistent(self, tmp_path):
        config = LoadgenConfig(
            scenarios=2,
            requests=16,
            clients=4,
            passes=2,
            cache_dir=str(tmp_path),
        )
        report = run_loadgen(config)
        assert report["repro_loadgen"] == 1
        first, second = report["passes"]
        assert first["errors"] == 0 and second["errors"] == 0
        assert second["hit_ratio"] >= 0.9
        assert first["coalesced"] > 0
        assert report["digest_consistent"] is True
        assert len(report["result_digests"]) == 2
        assert report["server"]["counters"]["serve.computed"] == 2

    def test_served_digests_match_local_runs(self, tmp_path):
        config = LoadgenConfig(
            scenarios=1,
            requests=4,
            clients=2,
            passes=1,
            cache_dir=str(tmp_path),
        )
        report = run_loadgen(config)
        scenario = loadgen_scenarios(1)[0]
        ((scenario_digest, result_digest),) = report[
            "result_digests"
        ].items()
        assert scenario_digest == scenario.digest()
        assert result_digest == scenario.run().digest()

    def test_report_is_json_ready(self, tmp_path):
        config = LoadgenConfig(
            scenarios=1, requests=2, clients=1, passes=1,
            cache_dir=str(tmp_path),
        )
        report = run_loadgen(config)
        round_tripped = json.loads(json.dumps(report, sort_keys=True))
        assert round_tripped["digest_consistent"] is True
