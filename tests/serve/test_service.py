"""The service core: coalescing, backpressure, deadlines, digest parity."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError, MessError
from repro.experiments.base import ExperimentResult
from repro.resilience.failures import DeadlineExceededError
from repro.serve.backends import MemoryLRUBackend
from repro.serve.loadgen import loadgen_scenarios
from repro.serve.service import (
    BadRequestError,
    CharacterizationService,
    NotFoundError,
    QueueFullError,
    ServiceConfig,
    error_status,
)


def run_service(coro_factory, config=None, backend=None):
    """Start a service, run the coroutine against it, close it."""

    async def driver():
        service = CharacterizationService(config=config, backend=backend)
        await service.start()
        try:
            return await coro_factory(service)
        finally:
            await service.close()

    return asyncio.run(driver())


def tiny_spec(index: int = 0):
    return loadgen_scenarios(index + 1)[index].to_spec()


class TestSubmit:
    def test_miss_then_hit(self):
        spec = tiny_spec()

        async def scenario(service):
            first = await service.submit("characterize", spec)
            second = await service.submit("characterize", spec)
            return first, second, service.stats()

        first, second, stats = run_service(
            scenario, backend=MemoryLRUBackend()
        )
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["digest"] == second["digest"]
        assert first["result"] == second["result"]
        counters = stats["counters"]
        assert counters["serve.computed"] == 1
        assert counters["serve.hits"] == 1
        assert counters["serve.misses"] == 1

    def test_result_is_digest_identical_to_local_run(self):
        scenario_obj = loadgen_scenarios(1)[0]
        spec = scenario_obj.to_spec()

        async def scenario(service):
            return await service.submit("characterize", spec)

        served = run_service(scenario, backend=MemoryLRUBackend())
        local = scenario_obj.run()
        assert (
            ExperimentResult.from_dict(served["result"]).digest()
            == local.digest()
        )

    def test_herd_of_50_computes_once(self):
        spec = tiny_spec()

        async def scenario(service):
            responses = await asyncio.gather(
                *(service.submit("characterize", spec) for _ in range(50))
            )
            return responses, service.stats()

        responses, stats = run_service(scenario, backend=MemoryLRUBackend())
        digests = {response["digest"] for response in responses}
        assert len(digests) == 1
        counters = stats["counters"]
        assert counters["serve.computed"] == 1
        assert counters["serve.coalesced"] >= 49
        assert stats["singleflight"]["followers"] >= 49

    def test_unknown_verb_is_a_bad_request(self):
        async def scenario(service):
            with pytest.raises(BadRequestError):
                await service.submit("explode", tiny_spec())

        run_service(scenario, backend=MemoryLRUBackend())

    def test_malformed_spec_is_a_bad_request(self):
        async def scenario(service):
            with pytest.raises(BadRequestError):
                await service.submit("characterize", {"nope": 1})
            with pytest.raises(BadRequestError):
                await service.submit("characterize", "not a mapping")

        run_service(scenario, backend=MemoryLRUBackend())

    def test_verb_must_match_workload_kind(self):
        async def scenario(service):
            with pytest.raises(BadRequestError):
                await service.submit("simulate", tiny_spec())

        run_service(scenario, backend=MemoryLRUBackend())


class TestBackpressure:
    def test_queue_limit_rejects_with_429(self):
        specs = [tiny_spec(n) for n in range(6)]
        config = ServiceConfig(
            backend="memory", max_inflight=1, queue_limit=2, deadline_s=120.0
        )

        async def scenario(service):
            outcomes = await asyncio.gather(
                *(service.submit("characterize", spec) for spec in specs),
                return_exceptions=True,
            )
            return outcomes, service.stats()

        outcomes, stats = run_service(lambda s: scenario(s), config=config)
        rejected = [o for o in outcomes if isinstance(o, QueueFullError)]
        served = [o for o in outcomes if isinstance(o, dict)]
        assert rejected, "expected at least one 429 under a full queue"
        assert served, "some requests must still be served"
        assert error_status(rejected[0]) == 429
        assert stats["counters"]["serve.rejected"] == len(rejected)

    def test_deadline_exceeded_maps_to_504(self):
        config = ServiceConfig(
            backend="memory", max_inflight=1, deadline_s=0.01
        )

        async def scenario(service):
            with pytest.raises(DeadlineExceededError) as excinfo:
                await service.submit("characterize", tiny_spec())
            return excinfo.value, service.stats()

        exc, stats = run_service(lambda s: scenario(s), config=config)
        assert error_status(exc) == 504
        assert stats["counters"]["serve.timeouts"] == 1


class TestLookup:
    def test_lookup_serves_cached_and_404s_absent(self):
        spec = tiny_spec()

        async def scenario(service):
            submitted = await service.submit("characterize", spec)
            found = await service.lookup(submitted["digest"])
            with pytest.raises(NotFoundError):
                await service.lookup("ab" * 32)
            with pytest.raises(BadRequestError):
                await service.lookup("not-a-digest!")
            return submitted, found

        submitted, found = run_service(scenario, backend=MemoryLRUBackend())
        assert found["result"] == submitted["result"]


class TestConfigAndStats:
    def test_bad_config_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_inflight=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(deadline_s=-1.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(backend="redis")

    def test_error_status_fallback_is_500(self):
        assert error_status(ValueError("boom")) == 500
        assert error_status(MessError("boom")) == 500

    def test_stats_shape(self):
        async def scenario(service):
            return service.stats()

        stats = run_service(scenario, backend=MemoryLRUBackend())
        assert {"counters", "gauges", "histograms", "singleflight", "backend", "config"} <= set(stats)
        assert stats["backend"]["backend"] == "memory"
