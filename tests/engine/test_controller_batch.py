"""Batched PI-controller windows vs the scalar controller, bit-for-bit.

:func:`repro.engine.controller.controller_trajectory` claims exact
(not approximate) agreement with stepping a fresh
:class:`repro.core.controller.PIController` through the same
observations. Hypothesis drives random gains and random observation
streams — including NaN/inf windows, which must *hold* the estimate —
and the assertion is ``==``, never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.controller import PIController
from repro.engine.controller import controller_trajectory, window_bandwidths

finite_bw = st.floats(
    min_value=0.0, max_value=500.0, allow_nan=False, allow_infinity=False
)
observation = st.one_of(
    finite_bw,
    st.just(float("nan")),
    st.just(float("inf")),
)


def scalar_trajectory(
    observations, estimate, convergence_factor, integral_gain, integral_limit
):
    controller = PIController(
        convergence_factor=convergence_factor,
        integral_gain=integral_gain,
        integral_limit=integral_limit,
    )
    est = estimate
    out = []
    for observed in observations:
        est = controller.update(est, observed)
        out.append(est)
    return out


@settings(max_examples=200, deadline=None)
@given(
    observations=st.lists(observation, min_size=1, max_size=60),
    estimate=finite_bw,
    convergence_factor=st.floats(
        min_value=0.01, max_value=1.0, allow_nan=False
    ),
)
def test_proportional_trajectory_matches_scalar_exactly(
    observations, estimate, convergence_factor
):
    batched = controller_trajectory(
        np.array(observations),
        estimate=estimate,
        convergence_factor=convergence_factor,
    )
    scalar = scalar_trajectory(
        observations, estimate, convergence_factor, 0.0, 1e6
    )
    assert batched.tolist() == scalar


@settings(max_examples=200, deadline=None)
@given(
    observations=st.lists(observation, min_size=1, max_size=60),
    estimate=finite_bw,
    convergence_factor=st.floats(
        min_value=0.01, max_value=1.0, allow_nan=False
    ),
    integral_gain=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    integral_limit=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
)
def test_full_pi_trajectory_matches_scalar_exactly(
    observations, estimate, convergence_factor, integral_gain, integral_limit
):
    batched = controller_trajectory(
        np.array(observations),
        estimate=estimate,
        convergence_factor=convergence_factor,
        integral_gain=integral_gain,
        integral_limit=integral_limit,
    )
    scalar = scalar_trajectory(
        observations, estimate, convergence_factor, integral_gain,
        integral_limit,
    )
    assert batched.tolist() == scalar


def test_rejects_invalid_gains_like_the_scalar_controller():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        controller_trajectory(np.array([1.0]), convergence_factor=0.0)
    with pytest.raises(ConfigurationError):
        controller_trajectory(np.array([1.0]), integral_gain=-1.0)


class TestWindowBandwidths:
    @settings(max_examples=100, deadline=None)
    @given(
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        window_ops=st.integers(min_value=1, max_value=32),
    )
    def test_matches_scalar_window_bookkeeping(self, gaps, window_ops):
        times = np.cumsum(np.array(gaps, dtype=float))
        batched = window_bandwidths(times, 64, window_ops)
        complete = len(gaps) // window_ops
        assert batched.size == complete
        for index in range(complete):
            window = times[index * window_ops : (index + 1) * window_ops]
            elapsed = float(window[-1]) - float(window[0])
            expected = (
                64.0 * window_ops / elapsed if elapsed > 0 else float("nan")
            )
            got = float(batched[index])
            assert got == expected or (
                np.isnan(got) and np.isnan(expected)
            )

    def test_incomplete_stream_yields_no_windows(self):
        assert window_bandwidths(np.array([0.0, 1.0]), 64, 3).size == 0
