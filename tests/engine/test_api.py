"""The engine-selection API: registry, scenario field, runner, CLI.

The contract under test: ``engine`` is a first-class scenario field
(default ``"reference"``, so existing spec digests are unchanged), the
runner and CLI fold ``--engine`` into that field, and activation is a
properly scoped process-global (restored on exit, even on error).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import engine as engine_mod
from repro.cli import main
from repro.errors import ConfigurationError
from repro.runner import run_many
from repro.scenario import Scenario


class TestRegistry:
    def test_default_engine_is_reference(self):
        assert engine_mod.DEFAULT_ENGINE == "reference"
        assert engine_mod.active() == "reference"
        assert not engine_mod.vectorized()

    def test_resolve_none_means_default(self):
        assert engine_mod.resolve(None) == engine_mod.DEFAULT_ENGINE
        for name in engine_mod.ENGINE_NAMES:
            assert engine_mod.resolve(name) == name

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="vectorised"):
            engine_mod.resolve("vectorised")

    def test_using_restores_on_exit(self):
        assert engine_mod.active() == "reference"
        with engine_mod.using("vectorized"):
            assert engine_mod.vectorized()
        assert engine_mod.active() == "reference"

    def test_using_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with engine_mod.using("vectorized"):
                raise RuntimeError("boom")
        assert engine_mod.active() == "reference"

    def test_using_none_keeps_current(self):
        with engine_mod.using("vectorized"):
            with engine_mod.using(None):
                assert engine_mod.vectorized()

    def test_activate_returns_previous(self):
        previous = engine_mod.activate("vectorized")
        try:
            assert previous == "reference"
            assert engine_mod.active() == "vectorized"
        finally:
            engine_mod.activate(previous)


class TestScenarioField:
    def test_default_engine_not_in_spec(self):
        scenario = Scenario.for_experiment("fig17")
        assert scenario.engine == "reference"
        assert "engine" not in scenario.to_spec()

    def test_non_default_engine_in_spec_and_digest(self):
        reference = Scenario.for_experiment("fig17")
        vectorized = Scenario.for_experiment("fig17", engine="vectorized")
        assert vectorized.to_spec()["engine"] == "vectorized"
        assert reference.digest() != vectorized.digest()

    def test_round_trips_through_spec(self):
        scenario = Scenario.for_experiment("fig17", engine="vectorized")
        again = Scenario.from_spec(scenario.to_spec())
        assert again.engine == "vectorized"
        assert again.digest() == scenario.digest()

    def test_validate_rejects_unknown_engine(self):
        scenario = Scenario.for_experiment("fig17")
        bad = dataclasses.replace(scenario, engine="turbo")
        problems = bad.validate()
        assert any("engine" in problem for problem in problems)

    def test_override_rejects_unknown_engine(self):
        scenario = Scenario.for_experiment("fig17")
        with pytest.raises(ConfigurationError, match="engine"):
            scenario.with_overrides({"engine": "turbo"})

    def test_override_selects_engine(self):
        scenario = Scenario.for_experiment("fig17")
        fast = scenario.with_overrides({"engine": "vectorized"})
        assert fast.engine == "vectorized"

    def test_run_results_identical_across_engines(self):
        reference = Scenario.for_experiment("optane", scale=0.3)
        vectorized = Scenario.for_experiment(
            "optane", scale=0.3, engine="vectorized"
        )
        assert reference.run().digest() == vectorized.run().digest()

    def test_run_restores_ambient_engine(self):
        Scenario.for_experiment("fig17", engine="vectorized").run()
        assert engine_mod.active() == "reference"


class TestRunnerThreading:
    def test_engine_flag_selects_engine(self):
        outcome = run_many(
            ["fig17"], jobs=1, use_cache=False, engine="vectorized"
        )
        record = outcome.manifest.records[0]
        assert record.status == "ok"
        assert outcome.results["fig17"].rows

    def test_engines_cache_independently(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_many(["fig17"], jobs=1, cache_dir=cache_dir)
        second = run_many(
            ["fig17"], jobs=1, cache_dir=cache_dir, engine="vectorized"
        )
        third = run_many(
            ["fig17"], jobs=1, cache_dir=cache_dir, engine="vectorized"
        )
        assert first.manifest.records[0].cache_hits == 0
        # distinct cache key per engine: no false hit on the second run
        assert second.manifest.records[0].cache_hits == 0
        assert third.manifest.records[0].cache_hits == 1
        # but bit-identical payloads
        assert (
            first.manifest.records[0].result_digest
            == second.manifest.records[0].result_digest
        )

    def test_rejects_unknown_engine_eagerly(self):
        with pytest.raises(ConfigurationError):
            run_many(["fig17"], jobs=1, engine="turbo")


class TestCli:
    def test_run_engine_flag(self, capsys):
        assert main(["run", "fig17", "--engine", "vectorized"]) == 0
        assert "perlbench" in capsys.readouterr().out

    def test_run_opt_engine_override(self, capsys):
        assert main(["run", "fig17", "--opt", "engine=vectorized"]) == 0
        assert "perlbench" in capsys.readouterr().out

    def test_run_opt_engine_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "fig17", "--opt", "engine=bogus"])
        assert exc_info.value.code == 2
        assert "unknown engine 'bogus'" in capsys.readouterr().err

    def test_run_opt_engine_conflicting_flag(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(
                [
                    "run",
                    "fig17",
                    "--engine",
                    "reference",
                    "--opt",
                    "engine=vectorized",
                ]
            )
        assert exc_info.value.code == 2
        assert "disagree" in capsys.readouterr().err

    def test_bench_runs_filtered(self, capsys, tmp_path):
        payload_path = tmp_path / "bench.json"
        assert main(
            [
                "bench",
                "--filter",
                "family_interpolation",
                "--json",
                str(payload_path),
            ]
        ) == 0
        payload = json.loads(payload_path.read_text())
        assert payload["repro_bench"] == 1
        (entry,) = payload["benches"]
        assert entry["meta"]["digests_match"] is True
        assert entry["speedup"] > 1.0

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "curves.family_interpolation" in out
        assert "experiment.fig2" in out

    def test_bench_min_speedup_floor_fails(self, capsys):
        assert (
            main(
                [
                    "bench",
                    "--filter",
                    "family_interpolation",
                    "--min-speedup",
                    "1e9",
                ]
            )
            == 1
        )
