"""Dual-engine equivalence over every registered experiment.

The PR's core guarantee: for each golden-digest experiment, running
under ``engine="vectorized"`` produces an :class:`ExperimentResult`
whose digest is *identical* to the reference engine's — same rows, same
floats, same notes. Each run clears the on-disk result cache and the
in-process family memoization first, so both engines genuinely
recompute everything.

Experiments run at a reduced scale (digest equality is scale-local:
both engines see the same scale, so any divergence still shows). The
three heavyweights keep the ``slow`` marker convention of
``tests/test_integration.py``. The digest comes from
:func:`repro.bench.perf.deterministic_digest`, which is the plain
``result.digest()`` for every experiment except fig11, whose rows
embed genuinely measured wall-clock times (two runs of the *same*
engine differ on those).
"""

from __future__ import annotations

import pytest

from repro import engine as engine_mod
from repro.bench.perf import deterministic_digest
from repro.experiments import common as experiments_common
from repro.experiments.registry import experiment_ids, run_experiment
from repro.runner import cache as result_cache

#: Scale keeping the whole parametrized sweep in tens of seconds; the
#: heavy closed-loop experiments get pushed down further below.
_DEFAULT_SCALE = 0.3

_SCALES = {"fig10": 0.2, "fig11": 0.2, "fig13": 0.2}

_SLOW = {"fig10", "fig11", "fig13"}


def _params():
    for experiment_id in experiment_ids():
        marks = [pytest.mark.slow] if experiment_id in _SLOW else []
        yield pytest.param(experiment_id, id=experiment_id, marks=marks)


def _digest_under(engine: str, experiment_id: str, scale: float) -> str:
    result_cache.deactivate()
    experiments_common._FAMILY_CACHE.clear()
    with engine_mod.using(engine):
        result = run_experiment(experiment_id, scale=scale)
    return deterministic_digest(result)


@pytest.mark.parametrize("experiment_id", _params())
def test_engines_produce_identical_digests(experiment_id):
    scale = _SCALES.get(experiment_id, _DEFAULT_SCALE)
    reference = _digest_under("reference", experiment_id, scale)
    vectorized = _digest_under("vectorized", experiment_id, scale)
    assert reference == vectorized
