"""The scalar reference twins agree bit-for-bit with the fast kernels.

:mod:`repro.engine.reference` is the executable specification the
RPR012 parity check pins against: every vectorized kernel has a scalar
twin with an identical signature. Structural parity (names and
signatures) is asserted here with :mod:`inspect`, and a representative
numeric slice is asserted with ``==`` — the reference twins are the
ground truth the vectorized engine claims exactness against.
"""

from __future__ import annotations

import inspect

import numpy as np

from repro.dram.address import AddressMapper
from repro.dram.timing import DDR4_2666
from repro.engine import controller as fast_controller
from repro.engine import curves as fast_curves
from repro.engine import dram as fast_dram
from repro.engine import mess as fast_mess
from repro.engine import probe as fast_probe
from repro.engine import reference
from repro.platforms.presets import INTEL_SKYLAKE, family
from repro.scenario import build_memory

FAST_MODULES = (
    fast_controller,
    fast_curves,
    fast_dram,
    fast_mess,
    fast_probe,
)

SWEEP = np.linspace(0.0, 130.0, 97)


def fast_surface():
    surface = {}
    for module in FAST_MODULES:
        for name in module.__all__:
            surface[name] = getattr(module, name)
    return surface


class TestStructuralParity:
    def test_every_kernel_has_a_reference_twin(self):
        assert sorted(fast_surface()) == sorted(reference.__all__)

    def test_signatures_match_exactly(self):
        for name, fast in fast_surface().items():
            twin = getattr(reference, name)
            assert inspect.signature(fast) == inspect.signature(twin), name

    def test_twins_are_distinct_implementations(self):
        # probe_point_vectorized is the one sanctioned shared scalar
        # path (both sides delegate to bench.model_probe.probe_point).
        for name, fast in fast_surface().items():
            if name == "probe_point_vectorized":
                continue
            assert getattr(reference, name) is not fast, name


class TestNumericParity:
    def test_curve_latency(self, simple_curve):
        assert reference.curve_latency_batch(
            simple_curve, SWEEP
        ).tolist() == fast_curves.curve_latency_batch(
            simple_curve, SWEEP
        ).tolist()

    def test_family_latency_and_grid(self, small_family):
        ratios = np.array([0.5, 0.62, 1.0])
        for ratio in ratios:
            assert reference.family_latency_batch(
                small_family, SWEEP, float(ratio)
            ).tolist() == fast_curves.family_latency_batch(
                small_family, SWEEP, float(ratio)
            ).tolist()
        assert reference.family_latency_grid(
            small_family, SWEEP, ratios
        ).tolist() == fast_curves.family_latency_grid(
            small_family, SWEEP, ratios
        ).tolist()

    def test_inclinations(self, simple_curve, small_family):
        assert reference.curve_inclination_batch(
            simple_curve, SWEEP
        ).tolist() == fast_curves.curve_inclination_batch(
            simple_curve, SWEEP
        ).tolist()
        assert reference.family_inclination_batch(
            small_family, SWEEP, 0.75
        ).tolist() == fast_curves.family_inclination_batch(
            small_family, SWEEP, 0.75
        ).tolist()

    def test_controller_trajectory(self):
        observations = np.array(
            [10.0, 40.0, float("nan"), 80.0, float("inf"), 20.0, 20.0]
        )
        kwargs = dict(
            estimate=5.0,
            convergence_factor=0.4,
            integral_gain=0.05,
            integral_limit=50.0,
        )
        slow = reference.controller_trajectory(observations, **kwargs)
        fast = fast_controller.controller_trajectory(observations, **kwargs)
        assert np.asarray(slow).tolist() == np.asarray(fast).tolist()

    def test_window_bandwidths(self):
        issue = np.cumsum(np.full(64, 3.7)) + 100.0
        slow = reference.window_bandwidths(issue, 64, 16)
        fast = fast_controller.window_bandwidths(issue, 64, 16)
        assert np.asarray(slow).tolist() == np.asarray(fast).tolist()

    def test_probe_primitives(self):
        assert reference.issue_schedule(
            50, 3.3, start_ns=7.0
        ).tolist() == fast_probe.issue_schedule(50, 3.3, start_ns=7.0).tolist()
        assert reference.bresenham_reads(
            41, 0.62
        ).tolist() == fast_probe.bresenham_reads(41, 0.62).tolist()
        assert reference.stream_addresses(
            33, 4, 4096
        ).tolist() == fast_probe.stream_addresses(33, 4, 4096).tolist()
        values = np.linspace(0.1, 9.9, 257)
        assert reference.sequential_sum(values) == fast_probe.sequential_sum(
            values
        )

    def test_cap_never_stalls(self):
        t = np.arange(0.0, 100.0, 2.5)
        completions = t + 17.0
        for cap in (1, 4, 64):
            assert reference.cap_never_stalls(
                t, completions, cap
            ) == fast_probe.cap_never_stalls(t, completions, cap)

    def test_decode_addresses(self):
        mapper = AddressMapper(DDR4_2666, channels=4)
        addresses = np.arange(0, 1 << 24, 4093 * 64, dtype=np.int64)
        slow = reference.decode_addresses(mapper, addresses)
        fast = fast_dram.decode_addresses(mapper, addresses)
        assert sorted(slow) == sorted(fast)
        for field in slow:
            assert slow[field].tolist() == fast[field].tolist()

    def test_drive_fixed_rate(self):
        def make():
            return build_memory("mess", {"curves": family(INTEL_SKYLAKE)})

        slow = reference.drive_fixed_rate(make(), 3.0, 400)
        fast = fast_mess.drive_fixed_rate(make(), 3.0, 400)
        assert slow == fast
