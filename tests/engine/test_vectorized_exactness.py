"""The vectorized engine's bit-exactness claims, checked per layer.

Every fast path in :mod:`repro.engine` claims *exact* equality with the
scalar reference code — identical floats, not close ones. These tests
assert ``==`` at each seam: curve interpolation, probe schedules, batch
latency kernels, the full model probe, the Mess window drive, and DRAM
address decoding. The end-to-end experiment digests ride on these.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import engine as engine_mod
from repro.bench.model_probe import ProbeConfig, characterize_model, probe_point
from repro.dram.address import AddressMapper
from repro.dram.timing import DDR4_2666
from repro.engine.curves import (
    curve_inclination_batch,
    curve_latency_batch,
    family_inclination_batch,
    family_latency_batch,
    family_latency_grid,
)
from repro.engine.dram import decode_addresses, frfcfs_replay
from repro.engine.kernels import pipe_stays_idle
from repro.engine.mess import drive_fixed_rate
from repro.engine.probe import (
    bresenham_reads,
    cap_never_stalls,
    issue_schedule,
    probe_point_vectorized,
    sequential_sum,
    stream_addresses,
)
from repro.memmodels.fixed import FixedLatencyModel
from repro.memmodels.flawed import (
    DRAMsim3Analog,
    Ramulator2Analog,
    RamulatorAnalog,
)
from repro.memmodels.optane import OptaneModel
from repro.memmodels.simple_bw import SimpleBandwidthModel
from repro.platforms.presets import INTEL_SKYLAKE, family
from repro.scenario import build_memory
from repro.traces.driver import synthesize_mess_trace

BANDWIDTH_SWEEP = np.linspace(0.0, 130.0, 400)


class TestCurveBatches:
    def test_curve_latency_matches_scalar(self, simple_curve):
        batched = curve_latency_batch(simple_curve, BANDWIDTH_SWEEP)
        scalar = [simple_curve.latency_at(float(b)) for b in BANDWIDTH_SWEEP]
        assert batched.tolist() == scalar

    def test_family_latency_matches_scalar(self, small_family):
        for ratio in (0.5, 0.62, 0.75, 0.93, 1.0):
            batched = family_latency_batch(
                small_family, BANDWIDTH_SWEEP, ratio
            )
            scalar = [
                small_family.latency_at(float(b), ratio)
                for b in BANDWIDTH_SWEEP
            ]
            assert batched.tolist() == scalar

    def test_family_latency_nearest_matches_scalar(self, small_family):
        batched = family_latency_batch(
            small_family, BANDWIDTH_SWEEP, 0.62, interpolate=False
        )
        scalar = [
            small_family.latency_at(float(b), 0.62, interpolate=False)
            for b in BANDWIDTH_SWEEP
        ]
        assert batched.tolist() == scalar

    def test_grid_matches_scalar_double_loop(self, small_family):
        ratios = np.array([0.5, 0.7, 1.0])
        grid = family_latency_grid(small_family, BANDWIDTH_SWEEP, ratios)
        for row, ratio in enumerate(ratios):
            scalar = [
                small_family.latency_at(float(b), float(ratio))
                for b in BANDWIDTH_SWEEP
            ]
            assert grid[row].tolist() == scalar

    def test_inclination_matches_scalar(self, simple_curve, small_family):
        batched = curve_inclination_batch(simple_curve, BANDWIDTH_SWEEP)
        scalar = [
            simple_curve.inclination_at(float(b)) for b in BANDWIDTH_SWEEP
        ]
        assert batched.tolist() == scalar
        batched = family_inclination_batch(small_family, BANDWIDTH_SWEEP, 0.8)
        scalar = [
            small_family.inclination_at(float(b), 0.8)
            for b in BANDWIDTH_SWEEP
        ]
        assert batched.tolist() == scalar

    def test_preset_family_full_surface(self):
        fam = family(INTEL_SKYLAKE)
        sweep = np.linspace(0.0, fam.max_bandwidth_gbps * 1.05, 2000)
        for curve in fam:
            batched = family_latency_batch(fam, sweep, curve.read_ratio)
            scalar = [
                fam.latency_at(float(b), curve.read_ratio) for b in sweep
            ]
            assert batched.tolist() == scalar


class TestProbeSchedules:
    def test_issue_schedule_matches_scalar_accumulation(self):
        got = issue_schedule(500, 0.7)
        now, scalar = 0.0, []
        for _ in range(500):
            scalar.append(now)
            now += 0.7
        assert got.tolist() == scalar

    def test_bresenham_matches_scalar_interleave(self):
        for ratio in (0.0, 0.25, 0.5, 2 / 3, 0.75, 0.9, 1.0):
            got = bresenham_reads(400, ratio)
            reads_acc, scalar = 0, []
            for op_index in range(400):
                target = round((op_index + 1) * ratio)
                is_read = target > reads_acc
                if is_read:
                    reads_acc += 1
                scalar.append(is_read)
            assert got.tolist() == scalar

    def test_stream_addresses_match_scalar_round_robin(self):
        config = ProbeConfig()
        stream_lines = config.stream_bytes // 64
        got = stream_addresses(300, config.streams, config.stream_bytes)
        positions = [0] * config.streams
        scalar = []
        for op_index in range(300):
            stream = op_index % config.streams
            scalar.append(
                stream * config.stream_bytes + positions[stream] * 64
            )
            positions[stream] = (positions[stream] + 1) % stream_lines
        assert got.tolist() == scalar

    def test_sequential_sum_matches_running_addition(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 300.0, 2000)
        total = 0.0
        for value in values:
            total += float(value)
        assert sequential_sum(values) == total

    def test_cap_never_stalls_detects_saturation(self):
        t = issue_schedule(100, 1.0)
        fast = t + 5.0  # completes long before 64 more issues
        assert cap_never_stalls(t, fast, 64)
        slow = t + 200.0  # 200 ns latency, 64-deep window of 64 ns
        assert not cap_never_stalls(t, slow, 64)

    def test_pipe_stays_idle_conditions(self):
        model = RamulatorAnalog(theoretical_gbps=128.0)
        idle = issue_schedule(50, 10.0)
        assert pipe_stays_idle(model._pipe, idle)
        congested = issue_schedule(50, model._pipe.service_ns / 2)
        assert not pipe_stays_idle(model._pipe, congested)


PROBED_MODELS = [
    pytest.param(lambda: FixedLatencyModel(89.0), id="fixed"),
    pytest.param(lambda: RamulatorAnalog(theoretical_gbps=128.0), id="ramulator"),
    pytest.param(
        lambda: Ramulator2Analog(theoretical_gbps=307.0), id="ramulator2"
    ),
    pytest.param(
        lambda: SimpleBandwidthModel(peak_bandwidth_gbps=128.0),
        id="gem5-simple",
    ),
    pytest.param(
        lambda: DRAMsim3Analog(theoretical_gbps=128.0), id="dramsim3"
    ),
]

PROBE_CONFIG = ProbeConfig(
    read_ratios=(0.5, 0.75, 1.0),
    gaps_ns=(0.45, 1.1, 3.0, 15.0),
    ops_per_point=600,
    warmup_ops=100,
    max_outstanding=1024,
)


class TestProbeEquivalence:
    @pytest.mark.parametrize("model_factory", PROBED_MODELS)
    def test_point_matches_scalar_probe(self, model_factory):
        for ratio in (0.5, 1.0):
            for gap in (1.1, 15.0):
                vec = probe_point_vectorized(
                    model_factory(), ratio, gap, PROBE_CONFIG
                )
                ref = probe_point(model_factory(), ratio, gap, PROBE_CONFIG)
                assert vec is not None
                assert vec == ref

    def test_unknown_model_falls_back(self):
        assert (
            probe_point_vectorized(OptaneModel(), 1.0, 10.0, PROBE_CONFIG)
            is None
        )

    def test_stalling_schedule_falls_back(self):
        tight = ProbeConfig(
            ops_per_point=600, warmup_ops=100, max_outstanding=4
        )
        assert (
            probe_point_vectorized(
                FixedLatencyModel(89.0), 1.0, 0.45, tight
            )
            is None
        )

    @pytest.mark.parametrize("model_factory", PROBED_MODELS)
    def test_characterize_model_identical_across_engines(self, model_factory):
        with engine_mod.using("reference"):
            ref = characterize_model(model_factory, PROBE_CONFIG, name="t")
        with engine_mod.using("vectorized"):
            vec = characterize_model(model_factory, PROBE_CONFIG, name="t")
        assert ref.to_dict() == vec.to_dict()


class TestMessDrive:
    @pytest.mark.parametrize("gap_ns", [0.4, 1.0, 8.0])
    def test_drive_identical_across_engines(self, gap_ns):
        fam = family(INTEL_SKYLAKE)
        outcomes = {}
        for engine in engine_mod.ENGINE_NAMES:
            simulator = build_memory(
                "mess", {"curves": fam, "keep_history": True}
            )
            with engine_mod.using(engine):
                end = drive_fixed_rate(simulator, gap_ns, 4000)
            outcomes[engine] = (
                end,
                simulator.stats.reads,
                simulator.stats.total_latency_ns,
                simulator.stats.last_completion_ns,
                simulator._mess_bw,
                [record.mess_bandwidth_gbps for record in simulator.history],
                [record.latency_ns for record in simulator.history],
            )
        assert outcomes["reference"] == outcomes["vectorized"]

    def test_partial_window_tail_identical(self):
        fam = family(INTEL_SKYLAKE)
        outcomes = {}
        for engine in engine_mod.ENGINE_NAMES:
            simulator = build_memory("mess", {"curves": fam})
            ops = simulator.window_ops * 3 + 17  # ragged tail
            with engine_mod.using(engine):
                drive_fixed_rate(simulator, 1.0, ops)
            outcomes[engine] = (
                simulator.stats.reads,
                simulator.stats.total_latency_ns,
                simulator._mess_bw,
            )
        assert outcomes["reference"] == outcomes["vectorized"]


class TestDram:
    def test_decode_matches_scalar_mapper(self):
        mapper = AddressMapper(DDR4_2666, channels=6)
        rng = np.random.default_rng(11)
        addresses = (
            rng.integers(0, 1 << 34, 3000, dtype=np.int64) // 64
        ) * 64
        coords = decode_addresses(mapper, addresses)
        for index, address in enumerate(addresses):
            decoded = mapper.decode(int(address))
            assert coords["channel"][index] == decoded.channel
            assert coords["rank"][index] == decoded.rank
            assert coords["bank"][index] == decoded.bank
            assert coords["row"][index] == decoded.row
            assert coords["column"][index] == decoded.column

    def test_frfcfs_replay_engine_invariant(self):
        trace = synthesize_mess_trace(
            ops=1200, read_ratio=0.75, gap_ns=0.6, streams=8
        )
        results = {}
        for engine in engine_mod.ENGINE_NAMES:
            with engine_mod.using(engine):
                results[engine] = frfcfs_replay(DDR4_2666, 6, trace)
        assert results["reference"] == results["vectorized"]
