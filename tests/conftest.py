"""Shared fixtures for the test suite.

Simulation-backed tests use deliberately small configurations: few
cores, short windows, small arrays. The goal of a test is to exercise a
behaviour or invariant, not to regenerate a paper figure — the
benchmark suite does that at full size.
"""

from __future__ import annotations

import pytest

from repro.core.curve import BandwidthLatencyCurve
from repro.core.family import CurveFamily
from repro.cpu.cache import CacheConfig, HierarchyConfig
from repro.cpu.system import SystemConfig
from repro.runner import cache as result_cache


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep the on-disk result cache away from ``~/.cache`` in tests.

    Any test that runs experiments through the runner or CLI would
    otherwise read and write the user's real cache; pointing the
    environment override at a per-test directory and deactivating the
    process-global cache afterwards keeps every test hermetic.
    """
    monkeypatch.setenv(
        result_cache.ENV_CACHE_DIR, str(tmp_path / "repro-cache")
    )
    yield
    result_cache.deactivate()


@pytest.fixture
def simple_curve() -> BandwidthLatencyCurve:
    """A clean monotone curve: flat start, knee, steep tail."""
    return BandwidthLatencyCurve(
        read_ratio=1.0,
        bandwidth_gbps=[1, 20, 40, 60, 80, 95, 105, 110],
        latency_ns=[90, 92, 95, 100, 115, 150, 240, 400],
    )


@pytest.fixture
def waveform_curve() -> BandwidthLatencyCurve:
    """A curve with a post-peak bandwidth decline (Section III)."""
    return BandwidthLatencyCurve(
        read_ratio=0.5,
        bandwidth_gbps=[1, 30, 60, 85, 95, 92, 88, 85],
        latency_ns=[100, 105, 120, 180, 320, 360, 400, 430],
    )


@pytest.fixture
def small_family(simple_curve, waveform_curve) -> CurveFamily:
    """Two-curve family covering both traffic compositions."""
    return CurveFamily(
        [simple_curve, waveform_curve],
        name="test-platform",
        theoretical_bandwidth_gbps=128.0,
    )


@pytest.fixture
def tiny_hierarchy() -> HierarchyConfig:
    """Small caches so working sets and warmups stay cheap."""
    return HierarchyConfig(
        l1=CacheConfig(8 * 1024, 4, 1.5),
        l2=CacheConfig(32 * 1024, 4, 5.0),
        l3=CacheConfig(128 * 1024, 8, 18.0),
        noc_latency_ns=45.0,
    )


@pytest.fixture
def tiny_system_config(tiny_hierarchy) -> SystemConfig:
    """Four-core machine for fast full-system tests."""
    return SystemConfig(
        cores=4, hierarchy=tiny_hierarchy, issue_gap_ns=0.3, mshrs=8
    )
