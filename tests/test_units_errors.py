"""Tests for unit conversions and the error hierarchy."""

from __future__ import annotations

import pytest

from repro import errors
from repro.units import (
    CACHE_LINE_BYTES,
    bytes_per_ns_to_gbps,
    cycles_to_ns,
    ddr_rate_to_gbps,
    gbps_to_bytes_per_ns,
    gbps_to_lines_per_ns,
    lines_per_ns_to_gbps,
    ns_to_cycles,
)


class TestUnits:
    def test_gbps_is_bytes_per_ns(self):
        assert gbps_to_bytes_per_ns(5.0) == pytest.approx(5.0)
        assert bytes_per_ns_to_gbps(5.0) == pytest.approx(5.0)

    def test_line_rate_roundtrip(self):
        assert lines_per_ns_to_gbps(gbps_to_lines_per_ns(128.0)) == (
            pytest.approx(128.0)
        )

    def test_one_line_per_ns(self):
        assert lines_per_ns_to_gbps(1.0) == pytest.approx(CACHE_LINE_BYTES)

    def test_cycles_conversion(self):
        assert cycles_to_ns(20, 2.0) == pytest.approx(10.0)
        assert ns_to_cycles(10.0, 2.0) == pytest.approx(20.0)

    def test_invalid_frequency(self):
        with pytest.raises(errors.ConfigurationError):
            cycles_to_ns(10, 0.0)
        with pytest.raises(errors.ConfigurationError):
            ns_to_cycles(10, -1.0)

    def test_ddr_rate(self):
        assert ddr_rate_to_gbps(2666) == pytest.approx(21.328)
        assert ddr_rate_to_gbps(4800) == pytest.approx(38.4)

    def test_invalid_ddr_rate(self):
        with pytest.raises(errors.ConfigurationError):
            ddr_rate_to_gbps(0)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.CurveError,
            errors.ConfigurationError,
            errors.SimulationError,
            errors.BenchmarkError,
            errors.TraceError,
            errors.ProfilingError,
        ],
    )
    def test_all_derive_from_mess_error(self, exc):
        assert issubclass(exc, errors.MessError)
        with pytest.raises(errors.MessError):
            raise exc("boom")


class TestPublicApi:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.1.0"
