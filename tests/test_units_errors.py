"""Tests for unit conversions and the error hierarchy."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import errors
from repro.units import (
    CACHE_LINE_BYTES,
    bytes_per_ns_to_gbps,
    cycles_to_ns,
    ddr_rate_to_gbps,
    gbps_to_bytes_per_ns,
    gbps_to_lines_per_ns,
    lines_per_ns_to_gbps,
    ns_to_cycles,
)


class TestUnits:
    def test_gbps_is_bytes_per_ns(self):
        assert gbps_to_bytes_per_ns(5.0) == pytest.approx(5.0)
        assert bytes_per_ns_to_gbps(5.0) == pytest.approx(5.0)

    def test_line_rate_roundtrip(self):
        assert lines_per_ns_to_gbps(gbps_to_lines_per_ns(128.0)) == (
            pytest.approx(128.0)
        )

    def test_one_line_per_ns(self):
        assert lines_per_ns_to_gbps(1.0) == pytest.approx(CACHE_LINE_BYTES)

    def test_cycles_conversion(self):
        assert cycles_to_ns(20, 2.0) == pytest.approx(10.0)
        assert ns_to_cycles(10.0, 2.0) == pytest.approx(20.0)

    def test_invalid_frequency(self):
        with pytest.raises(errors.ConfigurationError):
            cycles_to_ns(10, 0.0)
        with pytest.raises(errors.ConfigurationError):
            ns_to_cycles(10, -1.0)

    def test_ddr_rate(self):
        assert ddr_rate_to_gbps(2666) == pytest.approx(21.328)
        assert ddr_rate_to_gbps(4800) == pytest.approx(38.4)

    def test_invalid_ddr_rate(self):
        with pytest.raises(errors.ConfigurationError):
            ddr_rate_to_gbps(0)


#: Physically sensible magnitudes: femto-scale to tera-scale, no
#: signed zeros or subnormals to fight with.
_MAGNITUDES = st.floats(
    min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False
)
_FREQUENCIES_GHZ = st.floats(
    min_value=1e-3, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestUnitsRoundTripProperties:
    """The converter pairs must invert each other everywhere, not just
    at the hand-picked values above — this is what lets RPR001 insist
    all unit mixing funnels through :mod:`repro.units`."""

    @given(_MAGNITUDES)
    def test_gbps_bytes_per_ns_roundtrip(self, gbps):
        assert gbps_to_bytes_per_ns(gbps) == pytest.approx(gbps, rel=1e-12)
        assert bytes_per_ns_to_gbps(
            gbps_to_bytes_per_ns(gbps)
        ) == pytest.approx(gbps, rel=1e-12)

    @given(_MAGNITUDES)
    def test_gbps_lines_per_ns_roundtrip(self, gbps):
        lines = gbps_to_lines_per_ns(gbps)
        assert lines_per_ns_to_gbps(lines) == pytest.approx(gbps, rel=1e-12)
        # one line per ns is exactly one cache line of bytes per ns
        assert gbps_to_bytes_per_ns(lines_per_ns_to_gbps(lines)) == (
            pytest.approx(lines * CACHE_LINE_BYTES, rel=1e-12)
        )

    @given(_MAGNITUDES, _FREQUENCIES_GHZ)
    def test_cycles_ns_roundtrip(self, cycles, freq_ghz):
        ns = cycles_to_ns(cycles, freq_ghz)
        assert ns_to_cycles(ns, freq_ghz) == pytest.approx(cycles, rel=1e-9)

    @given(_MAGNITUDES, _FREQUENCIES_GHZ)
    def test_ns_cycles_roundtrip(self, ns, freq_ghz):
        cycles = ns_to_cycles(ns, freq_ghz)
        assert cycles_to_ns(cycles, freq_ghz) == pytest.approx(ns, rel=1e-9)

    @given(st.floats(max_value=0.0, allow_nan=False))
    def test_non_positive_frequency_always_rejected(self, freq_ghz):
        with pytest.raises(errors.ConfigurationError):
            cycles_to_ns(1.0, freq_ghz)
        with pytest.raises(errors.ConfigurationError):
            ns_to_cycles(1.0, freq_ghz)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.CurveError,
            errors.ConfigurationError,
            errors.SimulationError,
            errors.BenchmarkError,
            errors.TraceError,
            errors.ProfilingError,
        ],
    )
    def test_all_derive_from_mess_error(self, exc):
        assert issubclass(exc, errors.MessError)
        with pytest.raises(errors.MessError):
            raise exc("boom")


class TestPublicApi:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.1.0"
