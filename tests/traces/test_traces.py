"""Tests for trace format, capture, and trace-driven replay."""

from __future__ import annotations

import pytest

from repro.dram.controller import DramController
from repro.dram.timing import DDR4_2666
from repro.errors import TraceError
from repro.memmodels.cycle_accurate import CycleAccurateModel
from repro.memmodels.fixed import FixedLatencyModel
from repro.request import AccessType
from repro.traces.capture import TraceCapturingModel
from repro.traces.driver import (
    replay_trace,
    replay_trace_frfcfs,
    synthesize_mess_trace,
)
from repro.traces.format import TraceRecord, read_trace, write_trace


class TestFormat:
    def test_line_roundtrip(self):
        record = TraceRecord(12.5, 0xDEAD00, AccessType.WRITE)
        parsed = TraceRecord.from_line(record.to_line())
        assert parsed == record

    def test_file_roundtrip(self, tmp_path):
        records = synthesize_mess_trace(ops=50, read_ratio=0.7, gap_ns=1.0)
        path = tmp_path / "trace.csv"
        assert write_trace(records, path) == 50
        loaded = list(read_trace(path))
        assert loaded == records

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("# header\n\n1.0,0x40,R\n")
        assert len(list(read_trace(path))) == 1

    @pytest.mark.parametrize(
        "line",
        ["1.0,0x40", "x,0x40,R", "1.0,0x40,Q", "-1.0,0x40,R", "1.0,-64,R"],
    )
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(TraceError):
            TraceRecord.from_line(line, lineno=7)

    def test_to_request_with_shift(self):
        record = TraceRecord(10.0, 64, AccessType.READ)
        request = record.to_request(time_shift_ns=5.0)
        assert request.issue_time_ns == 15.0
        assert request.address == 64


class TestCapture:
    def test_all_traffic_recorded(self):
        capture = TraceCapturingModel(FixedLatencyModel(latency_ns=10.0))
        from repro.request import MemoryRequest

        capture.access(MemoryRequest(0, AccessType.READ, 1.0))
        capture.access(MemoryRequest(64, AccessType.WRITE, 2.0))
        assert len(capture.records) == 2
        assert capture.records[1].access_type is AccessType.WRITE
        assert capture.inner.stats.accesses == 2

    def test_reset_clears_records(self):
        capture = TraceCapturingModel(FixedLatencyModel())
        from repro.request import MemoryRequest

        capture.access(MemoryRequest(0, AccessType.READ, 0.0))
        capture.reset()
        assert capture.records == []


class TestSynthesize:
    def test_ratio_exact(self):
        records = synthesize_mess_trace(ops=1000, read_ratio=0.7, gap_ns=1.0)
        reads = sum(1 for r in records if r.access_type is AccessType.READ)
        assert reads == 700

    def test_times_spaced_by_gap(self):
        records = synthesize_mess_trace(ops=10, read_ratio=1.0, gap_ns=2.5)
        assert records[3].issue_time_ns == pytest.approx(7.5)

    def test_validation(self):
        with pytest.raises(TraceError):
            synthesize_mess_trace(ops=0, read_ratio=1.0, gap_ns=1.0)
        with pytest.raises(TraceError):
            synthesize_mess_trace(ops=10, read_ratio=2.0, gap_ns=1.0)


class TestReplay:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            replay_trace(FixedLatencyModel(), [])

    def test_fixed_model_replay_latency(self):
        records = synthesize_mess_trace(ops=500, read_ratio=1.0, gap_ns=2.0)
        result = replay_trace(FixedLatencyModel(latency_ns=33.0), records)
        assert result.mean_read_latency_ns == pytest.approx(33.0)
        assert result.requests == 500

    def test_pressure_scales_bandwidth(self):
        records = synthesize_mess_trace(ops=2000, read_ratio=1.0, gap_ns=2.0)
        slow = replay_trace(FixedLatencyModel(), records, pressure=1.0)
        fast = replay_trace(FixedLatencyModel(), records, pressure=4.0)
        assert fast.bandwidth_gbps == pytest.approx(
            4 * slow.bandwidth_gbps, rel=0.05
        )

    def test_closed_loop_bounds_latency(self):
        records = synthesize_mess_trace(ops=3000, read_ratio=1.0, gap_ns=0.1)
        model = CycleAccurateModel(DDR4_2666, channels=1)
        result = replay_trace(model, records, max_outstanding=32)
        # 32 outstanding at channel peak bounds the mean queue delay
        assert result.mean_read_latency_ns < 32 * 64 / 10 + 500

    def test_frfcfs_beats_fcfs_on_conflicted_trace(self):
        """The scheduling ablation: first-ready raises row hits."""
        # single-line interleave so streams conflict in-bank
        records = synthesize_mess_trace(
            ops=4000, read_ratio=1.0, gap_ns=0.4, streams=24
        )
        fcfs_model = CycleAccurateModel(
            DDR4_2666, channels=2, interleave_bytes=64
        )
        replay_trace(fcfs_model, records)
        frfcfs_controller = DramController(
            DDR4_2666, channels=2, interleave_bytes=64
        )
        replay_trace_frfcfs(frfcfs_controller, records, window=16)
        fcfs_hits = fcfs_model.row_buffer_stats().rates()[0]
        frfcfs_hits = frfcfs_controller.row_buffer_stats().rates()[0]
        assert frfcfs_hits > fcfs_hits

    def test_frfcfs_validation(self):
        controller = DramController(DDR4_2666, channels=1)
        with pytest.raises(TraceError):
            replay_trace_frfcfs(controller, [], window=4)
        records = synthesize_mess_trace(ops=10, read_ratio=1.0, gap_ns=1.0)
        with pytest.raises(TraceError):
            replay_trace_frfcfs(controller, records, window=0)
