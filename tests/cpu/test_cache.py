"""Unit tests for the set-associative cache model."""

from __future__ import annotations

import pytest

from repro.cpu.cache import Cache, CacheConfig, HierarchyConfig
from repro.errors import ConfigurationError


def make_cache(size=4096, ways=4, latency=1.0):
    return Cache("T", size, ways, latency)


class TestGeometry:
    def test_sets_derived(self):
        cache = make_cache(size=4096, ways=4)  # 64 lines, 4 ways
        assert cache.num_sets == 16

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            Cache("T", 32, 1, 1.0)

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            Cache("T", 3 * 64, 2, 1.0)

    def test_invalid_ways(self):
        with pytest.raises(ConfigurationError):
            Cache("T", 4096, 0, 1.0)


class TestHitMiss:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        assert not cache.access(0, is_store=False).hit
        assert cache.access(0, is_store=False).hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_bytes_hit(self):
        cache = make_cache()
        cache.access(0, is_store=False)
        assert cache.access(63, is_store=False).hit

    def test_lru_eviction_order(self):
        cache = Cache("T", 2 * 64, 2, 1.0)  # one set, two ways
        cache.access(0 * 64, False)
        cache.access(1 * 64, False)
        cache.access(0 * 64, False)  # refresh line 0
        outcome = cache.access(2 * 64, False)  # evicts line 1 (LRU)
        assert outcome.clean_eviction_address == 1 * 64
        assert cache.contains(0)
        assert not cache.contains(64)


class TestWritePolicy:
    def test_store_marks_dirty_and_evicts_as_writeback(self):
        cache = Cache("T", 2 * 64, 2, 1.0)
        cache.access(0, is_store=True)
        cache.access(64, is_store=False)
        outcome = cache.access(128, is_store=False)  # evicts dirty line 0
        assert outcome.writeback_address == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_reported_separately(self):
        cache = Cache("T", 2 * 64, 2, 1.0)
        cache.access(0, is_store=False)
        cache.access(64, is_store=False)
        outcome = cache.access(128, is_store=False)
        assert outcome.writeback_address is None
        assert outcome.clean_eviction_address == 0
        assert cache.stats.clean_evictions == 1

    def test_store_hit_dirties_resident_line(self):
        cache = Cache("T", 2 * 64, 2, 1.0)
        cache.access(0, is_store=False)  # clean
        cache.access(0, is_store=True)  # now dirty
        cache.access(64, is_store=False)
        outcome = cache.access(128, is_store=False)
        assert outcome.writeback_address == 0


class TestPriming:
    def test_install_does_not_touch_stats(self):
        cache = make_cache()
        cache.install(0, dirty=True)
        assert cache.stats.accesses == 0
        assert cache.contains(0)

    def test_fill_with_scratch_full_dirty(self):
        cache = Cache("T", 4 * 64, 2, 1.0)
        installed = cache.fill_with_scratch(1 << 20, dirty_fraction=1.0)
        assert installed == 4
        outcome = cache.access(0, is_store=False)
        assert outcome.writeback_address is not None

    def test_fill_with_scratch_fraction(self):
        cache = Cache("T", 64 * 64, 4, 1.0)
        cache.fill_with_scratch(1 << 20, dirty_fraction=0.5)
        writebacks = 0
        clean = 0
        for line in range(64):
            outcome = cache.access(line * 64, is_store=False)
            if outcome.writeback_address is not None:
                writebacks += 1
            if outcome.clean_eviction_address is not None:
                clean += 1
        assert writebacks + clean == 64
        assert writebacks == pytest.approx(32, abs=4)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cache().fill_with_scratch(0, dirty_fraction=1.5)

    def test_reset_clears_contents(self):
        cache = make_cache()
        cache.access(0, False)
        cache.reset()
        assert not cache.contains(0)
        assert cache.stats.accesses == 0


class TestHierarchyConfig:
    def test_total_hit_path(self):
        config = HierarchyConfig(
            l1=CacheConfig(1024, 2, 1.0),
            l2=CacheConfig(2048, 2, 4.0),
            l3=CacheConfig(4096, 2, 10.0),
            noc_latency_ns=45.0,
        )
        assert config.total_hit_path_ns == 60.0
