"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.cpu.engine import Engine
from repro.errors import SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tiebreak_at_same_time(self):
        engine = Engine()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule(1.0, lambda t=tag: order.append(t))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_now_advances_with_events(self):
        engine = Engine()
        seen = []
        engine.schedule(3.0, lambda: seen.append(engine.now_ns))
        engine.schedule(7.0, lambda: seen.append(engine.now_ns))
        engine.run()
        assert seen == [3.0, 7.0]

    def test_schedule_after(self):
        engine = Engine()
        engine.schedule(4.0, lambda: engine.schedule_after(2.0, lambda: None))
        engine.run()
        assert engine.now_ns == 6.0

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="cannot schedule"):
            engine.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)


class TestBoundedRuns:
    def test_until_stops_before_future_events(self):
        engine = Engine()
        ran = []
        engine.schedule(1.0, lambda: ran.append(1))
        engine.schedule(10.0, lambda: ran.append(10))
        executed = engine.run(until_ns=5.0)
        assert executed == 1
        assert ran == [1]
        assert engine.now_ns == 5.0

    def test_bounded_runs_compose(self):
        engine = Engine()
        ran = []
        engine.schedule(1.0, lambda: ran.append(1))
        engine.schedule(10.0, lambda: ran.append(10))
        engine.run(until_ns=5.0)
        engine.run(until_ns=20.0)
        assert ran == [1, 10]

    def test_max_events(self):
        engine = Engine()
        for t in range(10):
            engine.schedule(float(t), lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending() == 7

    def test_clock_advances_to_until_when_queue_empties(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run(until_ns=100.0)
        assert engine.now_ns == 100.0

    def test_reentrancy_rejected(self):
        engine = Engine()

        def recurse():
            engine.run()

        engine.schedule(1.0, recurse)
        with pytest.raises(SimulationError, match="reentrant"):
            engine.run()

    def test_determinism(self):
        def build_and_run():
            engine = Engine()
            log = []
            for t in (3.0, 1.0, 2.0, 1.0):
                engine.schedule(t, lambda t=t: log.append(t))
            engine.run()
            return log

        assert build_and_run() == build_and_run()
