"""Unit tests for the replacement-policy registry.

The policies are the innermost loop of the cache model, so the tests
pin *exact* victim sequences (not just statistics): any change to the
update rules would silently shift every non-default scenario digest.
The final class is the RPR010-style determinism fence — the policy and
cache sources themselves must pass the RPR002 entropy scan.
"""

from __future__ import annotations

import inspect
from collections import OrderedDict

import pytest

from repro.checks import check_source
from repro.cpu import cache as cache_module
from repro.cpu import policies as policies_module
from repro.cpu.policies import (
    LruPolicy,
    SeededRandomPolicy,
    TreePlruPolicy,
    make_policy,
    mix64,
    policy_kinds,
)
from repro.errors import ConfigurationError


class TestRegistry:
    def test_kinds_sorted_and_complete(self):
        assert policy_kinds() == ("lru", "plru", "random")

    def test_make_policy_dispatch(self):
        assert isinstance(make_policy("lru", 4), LruPolicy)
        assert isinstance(make_policy("plru", 4), TreePlruPolicy)
        assert isinstance(make_policy("random", 4, seed=7), SeededRandomPolicy)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("fifo", 4)


class TestLru:
    def test_victim_is_least_recent(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.touch(0)  # order now 1, 2, 3, 0
        assert policy.victim() == 1

    def test_matches_ordered_dict_semantics(self):
        """Bit-exact replay of the pre-refactor OrderedDict cache set."""
        policy = LruPolicy(8)
        shadow: OrderedDict[int, None] = OrderedDict()
        victims = []
        shadow_victims = []
        for step in range(400):
            way = mix64(42, step) % 8
            if way in shadow:
                shadow.move_to_end(way)
            else:
                shadow[way] = None
            policy.touch(way)
            if step % 7 == 3:
                victim = policy.victim()
                victims.append(victim)
                shadow_victim = next(iter(shadow))
                shadow_victims.append(shadow_victim)
                shadow.pop(shadow_victim)
                shadow[victim] = None
                policy.forget(victim)
                policy.touch(victim)
        assert victims == shadow_victims

    def test_forget_removes_way(self):
        policy = LruPolicy(2)
        policy.touch(0)
        policy.touch(1)
        policy.forget(0)
        assert policy.victim() == 1


class TestTreePlru:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(ConfigurationError):
            TreePlruPolicy(6)

    def test_golden_victim_sequence(self):
        """Simu3 binary-tree PLRU: bits steer away from touched ways."""
        policy = TreePlruPolicy(4)
        trace = []
        for way in (0, 1, 2, 3, 0):
            policy.touch(way)
            trace.append(policy.victim())
        # Hand-traced against the heap-array bit updates; this exact
        # sequence is the tree-PLRU fingerprint.
        assert trace == [2, 2, 0, 0, 2]

    def test_victim_never_just_touched(self):
        policy = TreePlruPolicy(8)
        for step in range(200):
            way = mix64(7, step) % 8
            policy.touch(way)
            assert policy.victim() != way


class TestSeededRandom:
    def test_deterministic_for_same_seed(self):
        first = SeededRandomPolicy(8, seed=123)
        second = SeededRandomPolicy(8, seed=123)
        seq_a = [first.victim() for _ in range(64)]
        seq_b = [second.victim() for _ in range(64)]
        assert seq_a == seq_b

    def test_distinct_seeds_decorrelate(self):
        a = SeededRandomPolicy(8, seed=1)
        b = SeededRandomPolicy(8, seed=2)
        assert [a.victim() for _ in range(64)] != [
            b.victim() for _ in range(64)
        ]

    def test_victims_in_range(self):
        policy = SeededRandomPolicy(4, seed=99)
        victims = {policy.victim() for _ in range(256)}
        assert victims == {0, 1, 2, 3}


class TestMix64:
    def test_stable_golden_values(self):
        assert mix64(0) == mix64(0)
        assert mix64(1, 2) != mix64(2, 1)

    def test_masked_to_64_bits(self):
        assert 0 <= mix64(2**80, 2**90) < 2**64


class TestDeterminismFence:
    """RPR010-style fence: replacement order must never depend on
    set/dict iteration order or ambient entropy. The RPR002 scanner
    covers entropy imports, wall-clock reads and set iteration; run it
    over the real sources so a regression cannot land silently.
    """

    @pytest.mark.parametrize(
        "module, filename",
        [
            (policies_module, "cpu/policies.py"),
            (cache_module, "cpu/cache.py"),
        ],
    )
    def test_sources_pass_entropy_scan(self, module, filename):
        source = inspect.getsource(module)
        findings = [
            finding
            for finding in check_source(source, filename=filename)
            if finding.rule_id == "RPR002"
        ]
        assert findings == []

    def test_no_builtin_hash_in_seed_chain(self):
        """hash() is salted per-process; seeds must come from mix64 /
        spec digests only."""
        import ast

        for module in (policies_module, cache_module):
            tree = ast.parse(inspect.getsource(module))
            calls = [
                node
                for node in ast.walk(tree)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ]
            assert calls == []
