"""Unit tests for the pluggable cache-model subsystem.

Covers the declarative :class:`CacheModelSpec` (round-trips, presets,
canonicalization, plausibility validation) and the behavioral seams it
opens in :class:`MemoryHierarchy`: alternative topologies, write
policies, inclusivity, shared-level contention, and the OpenPiton
``writeback_clean_lines`` fault observed *through* each replacement
policy.
"""

from __future__ import annotations

import pytest

from repro.cpu.cache import CacheConfig, HierarchyConfig
from repro.cpu.cachemodel import (
    CACHE_PRESETS,
    CacheModelSpec,
    cache_preset_names,
    canonical_cache_spec,
    derive_policy_seed,
    validate_cache_model,
)
from repro.cpu.hierarchy import MemoryHierarchy
from repro.cpu.policies import policy_kinds
from repro.errors import ConfigurationError
from repro.memmodels.fixed import FixedLatencyModel


@pytest.fixture
def config():
    return HierarchyConfig(
        l1=CacheConfig(1024, 2, 1.0),
        l2=CacheConfig(4096, 2, 4.0),
        l3=CacheConfig(16384, 4, 10.0),
        noc_latency_ns=45.0,
    )


def make_hierarchy(config, cache_model=None, prefetch=0, **kwargs):
    memory = FixedLatencyModel(latency_ns=50.0)
    hierarchy = MemoryHierarchy(
        cores=2,
        config=config,
        memory=memory,
        prefetch_lines=prefetch,
        cache_model=cache_model,
        **kwargs,
    )
    return hierarchy, memory


class TestSpec:
    def test_default_round_trip(self):
        spec = CacheModelSpec()
        assert CacheModelSpec.from_spec(spec.to_spec()) == spec

    def test_non_default_round_trip(self):
        spec = CacheModelSpec(
            topology="private-l1-shared-l2",
            policy="plru",
            line_bytes=128,
            write_policy="write-through",
            inclusive=True,
            shared_latency_penalty_ns=0.75,
            seed=42,
        )
        assert CacheModelSpec.from_spec(spec.to_spec()) == spec

    def test_invalid_enums_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheModelSpec(topology="mesh")
        with pytest.raises(ConfigurationError):
            CacheModelSpec(policy="fifo")
        with pytest.raises(ConfigurationError):
            CacheModelSpec(write_policy="write-around")
        with pytest.raises(ConfigurationError):
            CacheModelSpec(line_bytes=48)
        with pytest.raises(ConfigurationError):
            CacheModelSpec(shared_latency_penalty_ns=-1.0)

    def test_presets_all_construct(self):
        for name in cache_preset_names():
            payload = canonical_cache_spec(name)
            spec = CacheModelSpec.from_spec(payload)
            assert isinstance(spec, CacheModelSpec)

    def test_default_preset_is_default_spec(self):
        assert CACHE_PRESETS["default"] == {}
        payload = canonical_cache_spec("default")
        assert CacheModelSpec.from_spec(payload) == CacheModelSpec()

    def test_canonical_partial_mapping_fills_defaults(self):
        payload = canonical_cache_spec({"policy": "plru"})
        assert payload["policy"] == "plru"
        assert payload["topology"] == "private-l1l2-shared-l3"

    def test_canonical_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_cache_spec("no-such-preset")

    def test_canonical_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_cache_spec({"polcy": "plru"})

    def test_seed_derivation_is_stable(self):
        payload = {"anything": 1}
        assert derive_policy_seed(payload) == derive_policy_seed(dict(payload))
        assert derive_policy_seed(payload) != derive_policy_seed({"other": 2})


class TestLevelPlan:
    def test_default_three_levels_shared_llc(self, config):
        plan = CacheModelSpec().level_plan(config)
        assert [shared for _, shared in plan] == [False, False, True]

    def test_simu3_two_levels(self, config):
        spec = CacheModelSpec(topology="private-l1-shared-l2")
        plan = spec.level_plan(config)
        assert [shared for _, shared in plan] == [False, True]
        assert plan[0][0] is config.l1
        assert plan[1][0] is config.l2

    def test_flat_single_shared_level(self, config):
        plan = CacheModelSpec(topology="flat").level_plan(config)
        assert [shared for _, shared in plan] == [True]
        assert plan[0][0] is config.l3


class TestValidate:
    def test_default_geometry_is_clean(self, config):
        assert validate_cache_model(CacheModelSpec(), config) == []

    def test_indivisible_line_size_flagged(self, config):
        spec = CacheModelSpec(line_bytes=4096)
        bad = HierarchyConfig(
            l1=CacheConfig(1024, 2, 1.0),
            l2=CacheConfig(4096, 2, 4.0),
            l3=CacheConfig(16384, 4, 10.0),
        )
        problems = validate_cache_model(spec, bad)
        assert problems and any("L1" in p for p in problems)

    def test_plru_non_power_of_two_ways_flagged(self):
        spec = CacheModelSpec(policy="plru")
        bad = HierarchyConfig(
            l1=CacheConfig(64 * 3, 3, 1.0),
            l2=CacheConfig(4096, 2, 4.0),
            l3=CacheConfig(16384, 4, 10.0),
        )
        problems = validate_cache_model(spec, bad)
        assert any("plru" in p for p in problems)


class TestTopologies:
    def test_simu3_shares_l2_between_cores(self, config):
        spec = CacheModelSpec(topology="private-l1-shared-l2")
        hierarchy, _ = make_hierarchy(config, cache_model=spec)
        hierarchy.access(0, 0, False, 0.0)
        # the other core misses its private L1 but hits the shared L2
        access = hierarchy.access(1, 0, False, 1.0)
        assert access.level == "L2"

    def test_flat_hits_in_single_level(self, config):
        spec = CacheModelSpec(topology="flat")
        hierarchy, memory = make_hierarchy(config, cache_model=spec)
        miss = hierarchy.access(0, 0, False, 0.0)
        assert miss.level == "MEM"
        assert miss.latency_ns == 10.0 + 45.0 + 50.0
        hit = hierarchy.access(1, 0, False, 1.0)
        assert hit.level == "L1"
        assert hit.latency_ns == 10.0

    def test_default_walk_latency_unchanged(self, config):
        hierarchy, _ = make_hierarchy(config, cache_model=CacheModelSpec())
        access = hierarchy.access(0, 0, False, 0.0)
        assert access.latency_ns == 1.0 + 4.0 + 10.0 + 45.0 + 50.0


class TestWritePolicies:
    def test_write_through_posts_store_writes(self, config):
        spec = CacheModelSpec(write_policy="write-through")
        hierarchy, memory = make_hierarchy(config, cache_model=spec)
        for i in range(8):
            hierarchy.access(0, i * 64, is_store=True, now_ns=float(i))
        assert memory.stats.writes == 8

    def test_write_through_never_dirties(self, config):
        spec = CacheModelSpec(write_policy="write-through")
        hierarchy, memory = make_hierarchy(config, cache_model=spec)
        # streaming stores over far more lines than the hierarchy holds
        for i in range(600):
            hierarchy.access(0, i * 64, is_store=True, now_ns=float(i))
        # every write is a posted store; none are dirty writebacks
        assert memory.stats.writes == 600
        assert hierarchy.llc.stats.writebacks == 0

    def test_write_back_defers_writes(self, config):
        hierarchy, memory = make_hierarchy(config, cache_model=CacheModelSpec())
        for i in range(8):
            hierarchy.access(0, i * 64, is_store=True, now_ns=float(i))
        assert memory.stats.writes == 0


class TestInclusive:
    @staticmethod
    def _fill_llc_set_keeping_line0_hot(hierarchy):
        """Evict line 0 from the LLC while core 0's L1 still holds it.

        L1 hits never touch the LLC's recency state, so interleaving
        conflict fills with re-reads of line 0 keeps it MRU in the L1
        (2 ways: line 0 + the latest conflict line) while it ages to
        LRU in the 4-way LLC set and gets evicted.
        """
        hierarchy.access(0, 0, False, 0.0)
        sets = hierarchy.llc.num_sets
        now = 1.0
        for k in range(1, 4):  # fill the remaining 3 LLC ways
            hierarchy.access(0, k * sets * 64, False, now)
            hierarchy.access(0, 0, False, now + 0.5)
            now += 1.0
        # 5th conflicting line: the LLC evicts its LRU way — line 0
        hierarchy.access(0, 4 * sets * 64, False, now)

    def test_llc_eviction_back_invalidates_l1(self, config):
        spec = CacheModelSpec(inclusive=True)
        hierarchy, _ = make_hierarchy(config, cache_model=spec)
        self._fill_llc_set_keeping_line0_hot(hierarchy)
        assert hierarchy.l1[0].stats.invalidations > 0
        # line 0 is gone from the whole hierarchy
        assert hierarchy.access(0, 0, False, 100.0).level == "MEM"

    def test_non_inclusive_keeps_upper_copies(self, config):
        hierarchy, _ = make_hierarchy(config, cache_model=CacheModelSpec())
        self._fill_llc_set_keeping_line0_hot(hierarchy)
        assert hierarchy.l1[0].stats.invalidations == 0
        # non-inclusive: the L1 copy survives the LLC eviction
        assert hierarchy.access(0, 0, False, 100.0).level == "L1"


class TestSharedPenalty:
    def test_contention_term_added_at_shared_level(self, config):
        spec = CacheModelSpec(shared_latency_penalty_ns=2.0)
        hierarchy, _ = make_hierarchy(config, cache_model=spec)
        access = hierarchy.access(0, 0, False, 0.0)
        # cores=2 -> one extra contender at the shared LLC
        assert access.latency_ns == 1.0 + 4.0 + (10.0 + 2.0) + 45.0 + 50.0

    def test_zero_penalty_is_bit_exact_default(self, config):
        base, _ = make_hierarchy(config, cache_model=None)
        spec_h, _ = make_hierarchy(config, cache_model=CacheModelSpec())
        a = base.access(0, 0, False, 0.0)
        b = spec_h.access(0, 0, False, 0.0)
        assert a.latency_ns == b.latency_ns


class TestCleanLineFaultThroughPolicies:
    """Satellite: the OpenPiton coherency fault must be observable
    through the policy seam — clean evictions turn into memory WRITEs
    under every registered replacement policy, not just LRU.
    """

    @pytest.mark.parametrize("policy", policy_kinds())
    def test_clean_evictions_written_back(self, config, policy):
        spec = CacheModelSpec(policy=policy) if policy != "lru" else None
        correct, correct_memory = make_hierarchy(
            config, cache_model=spec, policy_seed=7
        )
        faulty, faulty_memory = make_hierarchy(
            config, cache_model=spec, policy_seed=7, writeback_clean_lines=True
        )
        for hierarchy in (correct, faulty):
            for i in range(600):
                hierarchy.access(0, i * 64, is_store=False, now_ns=float(i))
        assert correct_memory.stats.writes == 0
        assert faulty_memory.stats.writes > 0


class TestSeededRandomHierarchy:
    def test_same_seed_reproduces_traffic(self, config):
        spec = CacheModelSpec(policy="random")
        runs = []
        for _ in range(2):
            hierarchy, memory = make_hierarchy(
                config, cache_model=spec, policy_seed=1234
            )
            for i in range(400):
                hierarchy.access(0, (i * 7 % 512) * 64, i % 3 == 0, float(i))
            runs.append(
                (
                    memory.stats.reads,
                    memory.stats.writes,
                    hierarchy.llc.stats.hits,
                    hierarchy.llc.stats.misses,
                )
            )
        assert runs[0] == runs[1]

    def test_different_seed_decorrelates(self, config):
        spec = CacheModelSpec(policy="random")
        counters = []
        for seed in (1, 2):
            hierarchy, memory = make_hierarchy(
                config, cache_model=spec, policy_seed=seed
            )
            for i in range(400):
                hierarchy.access(0, (i * 7 % 512) * 64, i % 3 == 0, float(i))
            counters.append((memory.stats.reads, hierarchy.llc.stats.hits))
        assert counters[0] != counters[1]
