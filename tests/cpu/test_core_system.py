"""Unit tests for cores and the System wrapper."""

from __future__ import annotations

import pytest

from repro.cpu.core import Delay, MemOp
from repro.cpu.system import System, SystemConfig, SystemResult
from repro.errors import ConfigurationError, SimulationError
from repro.memmodels.fixed import FixedLatencyModel


def ops_list(items):
    return iter(items)


class TestCoreExecution:
    def test_dependent_loads_serialize(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel(latency_ns=100.0))
        chain = [MemOp(i * (1 << 20), dependent=True) for i in range(5)]
        core = system.add_workload(0, ops_list(chain), mshrs=1)
        result = system.run()
        # each load: full miss path (69.5 overhead + 100 memory)
        assert core.stats.dependent_loads == 5
        assert result.duration_ns == pytest.approx(5 * 169.5, rel=0.01)

    def test_independent_loads_overlap(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel(latency_ns=100.0))
        ops = [MemOp(i * (1 << 20)) for i in range(8)]
        system.add_workload(0, ops_list(ops), mshrs=8)
        result = system.run()
        # all eight overlap: total ~ one latency + issue gaps
        assert result.duration_ns < 2 * 169.5

    def test_mshr_limit_caps_overlap(self, tiny_system_config):
        def run_with(mshrs):
            system = System(
                tiny_system_config, FixedLatencyModel(latency_ns=100.0)
            )
            ops = [MemOp(i * (1 << 20)) for i in range(16)]
            system.add_workload(0, ops_list(ops), mshrs=mshrs)
            return system.run().duration_ns

        assert run_with(2) > run_with(8)

    def test_delay_advances_time(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel())
        system.add_workload(0, ops_list([Delay(500.0)]))
        result = system.run()
        assert result.duration_ns == pytest.approx(500.0)

    def test_mean_dependent_latency(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel(latency_ns=80.0))
        chain = [MemOp(i * (1 << 20), dependent=True) for i in range(4)]
        system.add_workload(0, ops_list(chain), mshrs=1)
        result = system.run()
        assert result.mean_pointer_chase_latency_ns == pytest.approx(
            149.5, rel=0.01
        )

    def test_stores_counted(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel())
        ops = [MemOp(0, is_store=True), MemOp(1 << 20)]
        core = system.add_workload(0, ops_list(ops))
        system.run()
        assert core.stats.stores == 1
        assert core.stats.loads == 1


class TestSystemConfig:
    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(cores=0)

    def test_in_order_forces_two_mshrs(self):
        config = SystemConfig(cores=2, in_order=True, mshrs=16)
        assert config.effective_mshrs == 2

    def test_in_order_disables_prefetch(self, tiny_hierarchy):
        config = SystemConfig(
            cores=2, hierarchy=tiny_hierarchy, in_order=True, prefetch_lines=8
        )
        system = System(config, FixedLatencyModel())
        assert system.hierarchy.prefetch_lines == 0


class TestSystemWiring:
    def test_duplicate_core_rejected(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel())
        system.add_workload(0, ops_list([MemOp(0)]))
        with pytest.raises(ConfigurationError, match="already has"):
            system.add_workload(0, ops_list([MemOp(0)]))

    def test_core_index_out_of_range(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel())
        with pytest.raises(ConfigurationError, match="out of range"):
            system.add_workload(99, ops_list([MemOp(0)]))

    def test_run_without_workloads_rejected(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel())
        with pytest.raises(SimulationError, match="no workloads"):
            system.run()

    def test_result_reports_memory_stats(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel())
        ops = [MemOp(i * (1 << 20)) for i in range(6)]
        system.add_workload(0, ops_list(ops))
        result = system.run()
        assert isinstance(result, SystemResult)
        assert result.memory_reads == 6
        assert result.memory_read_ratio == 1.0
        assert result.events > 0

    def test_time_bounded_run(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel(latency_ns=50))
        infinite = (MemOp((i % 100) * (1 << 20)) for i in iter(int, 1))
        system.add_workload(0, infinite)
        result = system.run(until_ns=1000.0)
        assert result.duration_ns == pytest.approx(1000.0)
