"""Unit tests for the cache hierarchy and its memory traffic."""

from __future__ import annotations

import pytest

from repro.cpu.cache import CacheConfig, HierarchyConfig
from repro.cpu.hierarchy import MemoryHierarchy
from repro.errors import ConfigurationError
from repro.memmodels.fixed import FixedLatencyModel


@pytest.fixture
def config():
    return HierarchyConfig(
        l1=CacheConfig(1024, 2, 1.0),
        l2=CacheConfig(4096, 2, 4.0),
        l3=CacheConfig(16384, 4, 10.0),
        noc_latency_ns=45.0,
    )


def make_hierarchy(config, prefetch=0, **kwargs):
    memory = FixedLatencyModel(latency_ns=50.0)
    hierarchy = MemoryHierarchy(
        cores=2, config=config, memory=memory, prefetch_lines=prefetch, **kwargs
    )
    return hierarchy, memory


class TestMissPath:
    def test_cold_miss_goes_to_memory(self, config):
        hierarchy, memory = make_hierarchy(config)
        access = hierarchy.access(0, 0, is_store=False, now_ns=0.0)
        assert access.level == "MEM"
        assert access.latency_ns == 1.0 + 4.0 + 10.0 + 45.0 + 50.0
        assert memory.stats.reads == 1

    def test_l1_hit_after_fill(self, config):
        hierarchy, memory = make_hierarchy(config)
        hierarchy.access(0, 0, False, 0.0)
        access = hierarchy.access(0, 0, False, 1.0)
        assert access.level == "L1"
        assert access.latency_ns == 1.0
        assert memory.stats.reads == 1

    def test_private_l1_per_core(self, config):
        hierarchy, _ = make_hierarchy(config)
        hierarchy.access(0, 0, False, 0.0)
        # same line from the other core misses its own L1/L2 but hits L3
        access = hierarchy.access(1, 0, False, 1.0)
        assert access.level == "L3"

    def test_negative_address_rejected(self, config):
        hierarchy, _ = make_hierarchy(config)
        with pytest.raises(ConfigurationError):
            hierarchy.access(0, -64, False, 0.0)

    def test_invalid_core_count(self, config):
        with pytest.raises(ConfigurationError):
            MemoryHierarchy(0, config, FixedLatencyModel())


class TestWriteAllocate:
    def test_store_miss_is_memory_read(self, config):
        """A store becomes an RFO read; the write comes at eviction."""
        hierarchy, memory = make_hierarchy(config)
        hierarchy.access(0, 0, is_store=True, now_ns=0.0)
        assert memory.stats.reads == 1
        assert memory.stats.writes == 0

    def test_dirty_line_eventually_written_back(self, config):
        hierarchy, memory = make_hierarchy(config)
        hierarchy.access(0, 0, is_store=True, now_ns=0.0)
        # stream enough distinct lines to flush line 0 out of all levels
        for i in range(1, 600):
            hierarchy.access(0, i * 64, is_store=False, now_ns=float(i))
        assert memory.stats.writes >= 1

    def test_store_stream_approaches_half_read_half_write(self, config):
        hierarchy, memory = make_hierarchy(config)
        hierarchy.prime_write_steady_state(dirty_fraction=1.0)
        for i in range(800):
            hierarchy.access(0, i * 64, is_store=True, now_ns=float(i))
        assert memory.stats.read_ratio == pytest.approx(0.5, abs=0.02)


class TestCoherencyFault:
    def test_clean_evictions_written_back_when_faulty(self, config):
        correct, correct_memory = make_hierarchy(config)
        faulty, faulty_memory = make_hierarchy(
            config, writeback_clean_lines=True
        )
        for hierarchy in (correct, faulty):
            for i in range(600):
                hierarchy.access(0, i * 64, is_store=False, now_ns=float(i))
        assert correct_memory.stats.writes == 0
        assert faulty_memory.stats.writes > 0


class TestPrefetcher:
    def test_sequential_misses_trigger_prefetch(self, config):
        hierarchy, memory = make_hierarchy(config, prefetch=4)
        hierarchy.access(0, 0, False, 0.0)
        hierarchy.access(0, 64, False, 1.0)  # streak detected here
        assert hierarchy.prefetches_issued == 4
        assert memory.stats.reads == 2 + 4

    def test_prefetched_lines_hit_in_l3(self, config):
        hierarchy, _ = make_hierarchy(config, prefetch=4)
        hierarchy.access(0, 0, False, 0.0)
        hierarchy.access(0, 64, False, 1.0)
        access = hierarchy.access(0, 128, False, 2.0)
        assert access.level == "L3"

    def test_random_pattern_never_prefetches(self, config):
        hierarchy, _ = make_hierarchy(config, prefetch=4)
        for i, line in enumerate((10, 500, 33, 801, 7, 299)):
            hierarchy.access(0, line * 64, False, float(i))
        assert hierarchy.prefetches_issued == 0

    def test_interleaved_streams_both_tracked(self, config):
        hierarchy, _ = make_hierarchy(config, prefetch=2)
        base_a, base_b = 0, 1 << 20
        for i in range(3):
            hierarchy.access(0, base_a + i * 64, False, float(2 * i))
            hierarchy.access(0, base_b + i * 64, False, float(2 * i + 1))
        # both streams produce streaks despite interleaving
        assert hierarchy.prefetches_issued >= 4

    def test_throttled_under_congestion(self, config):
        hierarchy, _ = make_hierarchy(config, prefetch=4)
        hierarchy._miss_latency_ewma = 10_000.0
        hierarchy.access(0, 0, False, 0.0)
        hierarchy.access(0, 64, False, 1.0)
        assert hierarchy.prefetches_issued == 0
        assert hierarchy.prefetches_throttled == 1

    def test_zero_degree_disables(self, config):
        hierarchy, _ = make_hierarchy(config, prefetch=0)
        hierarchy.access(0, 0, False, 0.0)
        hierarchy.access(0, 64, False, 1.0)
        assert hierarchy.prefetches_issued == 0

    def test_negative_degree_rejected(self, config):
        with pytest.raises(ConfigurationError):
            MemoryHierarchy(1, config, FixedLatencyModel(), prefetch_lines=-1)
