"""Tests for the Paraver .prv subset."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.platforms.presets import INTEL_CASCADE_LAKE, family
from repro.profiling.paraver import (
    EVENT_BANDWIDTH_MBPS,
    EVENT_MPI_CALL,
    EVENT_PHASE,
    EVENT_STRESS_MILLI,
    MPI_CALL_IDS,
    read_prv,
    write_prv,
)
from repro.profiling.profile import MessProfile
from repro.profiling.sampler import sample_phase_profile
from repro.workloads.hpcg import HpcgPhaseProfile


@pytest.fixture
def profile():
    curves = family(INTEL_CASCADE_LAKE)
    samples = sample_phase_profile(
        HpcgPhaseProfile(iterations=1), peak_bandwidth_gbps=100.0
    )
    return MessProfile.from_samples(curves, samples)


class TestWriteRead:
    def test_roundtrip_structure(self, profile, tmp_path):
        path = tmp_path / "hpcg.prv"
        write_prv(profile.points, path)
        trace = read_prv(path)
        assert trace.total_time_ns > 0
        stress_events = trace.events_of_type(EVENT_STRESS_MILLI)
        assert len(stress_events) == len(profile.points)
        bandwidth_events = trace.events_of_type(EVENT_BANDWIDTH_MBPS)
        assert len(bandwidth_events) == len(profile.points)

    def test_stress_series_recovered(self, profile, tmp_path):
        path = tmp_path / "hpcg.prv"
        write_prv(profile.points, path)
        series = read_prv(path).stress_series()
        original = [p.stress_score for p in profile.points]
        recovered = [score for _, score in series]
        assert recovered == pytest.approx(original, abs=0.001)

    def test_mpi_events_mapped(self, profile, tmp_path):
        path = tmp_path / "hpcg.prv"
        write_prv(profile.points, path)
        trace = read_prv(path)
        mpi_values = {e.value for e in trace.events_of_type(EVENT_MPI_CALL)}
        assert MPI_CALL_IDS["MPI_Allreduce"] in mpi_values

    def test_phase_table_roundtrip(self, profile, tmp_path):
        path = tmp_path / "hpcg.prv"
        write_prv(profile.points, path)
        trace = read_prv(path)
        assert "spmv_head" in trace.phase_table.values()
        phase_ids = {e.value for e in trace.events_of_type(EVENT_PHASE)}
        assert phase_ids <= set(trace.phase_table)

    def test_empty_points_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            write_prv([], tmp_path / "empty.prv")


class TestParsing:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.prv"
        path.write_text("not a paraver file\n")
        with pytest.raises(TraceError, match="missing header"):
            read_prv(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.prv"
        path.write_text("#Paraver (x)\n")
        with pytest.raises(TraceError, match="malformed Paraver header"):
            read_prv(path)

    def test_unknown_record_kind(self, tmp_path):
        path = tmp_path / "bad.prv"
        path.write_text("#Paraver (d):100_ns:1(1):1:1(1:1)\n9:1:1:1:1:0:1:2\n")
        with pytest.raises(TraceError, match="unknown record kind"):
            read_prv(path)

    def test_malformed_event_record(self, tmp_path):
        path = tmp_path / "bad.prv"
        path.write_text("#Paraver (d):100_ns:1(1):1:1(1:1)\n2:1:1:1:1:0:42\n")
        with pytest.raises(TraceError, match="malformed event"):
            read_prv(path)
