"""Tests for sampling, curve positioning and timeline analysis."""

from __future__ import annotations

import pytest

from repro.cpu.core import MemOp
from repro.cpu.system import System
from repro.errors import ProfilingError
from repro.memmodels.fixed import FixedLatencyModel
from repro.profiling.profile import MessProfile
from repro.profiling.sampler import (
    BandwidthSample,
    sample_phase_profile,
    sample_system,
)
from repro.profiling.timeline import render_timeline, split_iterations
from repro.workloads.hpcg import HpcgPhaseProfile


@pytest.fixture
def hpcg_samples(small_family):
    profile = HpcgPhaseProfile(iterations=2)
    return sample_phase_profile(
        profile, peak_bandwidth_gbps=small_family.max_bandwidth_gbps
    )


class TestPhaseSampling:
    def test_samples_cover_whole_timeline(self, hpcg_samples):
        profile = HpcgPhaseProfile(iterations=2)
        total = sum(s.duration_ns for s in hpcg_samples)
        assert total == pytest.approx(profile.duration_ms * 1e6, rel=1e-6)

    def test_samples_annotated_with_phases(self, hpcg_samples):
        labels = {s.phase for s in hpcg_samples}
        assert "spmv_head" in labels
        assert "allreduce" in labels

    def test_mpi_calls_carried(self, hpcg_samples):
        assert any(s.mpi_call == "MPI_Allreduce" for s in hpcg_samples)

    def test_sample_period_respected(self, hpcg_samples):
        assert max(s.duration_ns for s in hpcg_samples) <= 10.0 * 1e6 + 1

    def test_validation(self):
        with pytest.raises(ProfilingError):
            sample_phase_profile(HpcgPhaseProfile(), peak_bandwidth_gbps=0)


class TestSystemSampling:
    def test_window_bandwidths_reflect_traffic(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel(latency_ns=50))
        ops = (MemOp(i * (1 << 20)) for i in range(2000))
        system.add_workload(0, ops)
        samples = sample_system(system, total_ns=2000.0, sample_ns=500.0)
        assert len(samples) == 4
        assert all(s.bandwidth_gbps >= 0 for s in samples)
        assert sum(s.duration_ns for s in samples) == pytest.approx(2000.0)

    def test_validation(self, tiny_system_config):
        system = System(tiny_system_config, FixedLatencyModel())
        with pytest.raises(ProfilingError):
            sample_system(system, total_ns=10.0, sample_ns=100.0)


class TestMessProfile:
    def test_every_sample_positioned(self, small_family, hpcg_samples):
        profile = MessProfile.from_samples(small_family, hpcg_samples)
        assert len(profile.points) == len(hpcg_samples)
        for point in profile.points:
            assert point.latency_ns > 0
            assert 0.0 <= point.stress_score <= 1.0
            assert point.color in {"green", "yellow", "red"}

    def test_saturated_fraction_and_summary(self, small_family, hpcg_samples):
        profile = MessProfile.from_samples(small_family, hpcg_samples)
        fraction = profile.saturated_time_fraction()
        assert 0.0 <= fraction <= 1.0
        assert profile.peak_bandwidth_gbps() > 0
        assert profile.peak_latency_ns() >= small_family.unloaded_latency_ns
        histogram = profile.color_histogram()
        assert sum(histogram.values()) == len(profile.points)

    def test_time_weighted_stress_differs_from_naive_mean(
        self, small_family, hpcg_samples
    ):
        profile = MessProfile.from_samples(small_family, hpcg_samples)
        weighted = profile.time_weighted_mean_stress()
        assert 0.0 <= weighted <= 1.0

    def test_empty_samples_rejected(self, small_family):
        with pytest.raises(ProfilingError):
            MessProfile.from_samples(small_family, [])


class TestTimeline:
    def test_split_iterations_on_allreduce(self, small_family, hpcg_samples):
        profile = MessProfile.from_samples(small_family, hpcg_samples)
        iterations = split_iterations(profile)
        assert len(iterations) == 2
        for iteration in iterations:
            assert iteration.phases[-1].mpi_call == "MPI_Allreduce"

    def test_longest_phase_is_compute(self, small_family, hpcg_samples):
        profile = MessProfile.from_samples(small_family, hpcg_samples)
        iteration = split_iterations(profile)[0]
        assert iteration.longest_phase.label == "spmv_head"
        assert iteration.longest_phase.mpi_call is None

    def test_spmv_head_more_stressed_than_tail(
        self, small_family, hpcg_samples
    ):
        """Figure 16's two stress levels within the long phase."""
        profile = MessProfile.from_samples(small_family, hpcg_samples)
        iteration = split_iterations(profile)[0]
        by_label = {p.label: p for p in iteration.phases}
        assert (
            by_label["spmv_head"].mean_stress
            > by_label["spmv_tail"].mean_stress
        )

    def test_render_timeline(self, small_family, hpcg_samples):
        profile = MessProfile.from_samples(small_family, hpcg_samples)
        art = render_timeline(profile, width=60)
        lines = art.splitlines()
        assert lines[0].startswith("MPI:")
        assert lines[1].startswith("phase:")
        assert lines[2].startswith("stress:")
        assert "M" in lines[0]

    def test_render_validation(self, small_family, hpcg_samples):
        profile = MessProfile.from_samples(small_family, hpcg_samples)
        with pytest.raises(ProfilingError):
            render_timeline(profile, width=3)


class TestBandwidthSample:
    def test_end_time(self):
        sample = BandwidthSample(
            start_ns=100.0, duration_ns=50.0, bandwidth_gbps=1.0, read_ratio=1.0
        )
        assert sample.end_ns == 150.0
