"""Unit tests: the flawed analogs reproduce their measured signatures."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memmodels.flawed import (
    DRAMsim3Analog,
    Ramulator2Analog,
    RamulatorAnalog,
)
from repro.request import AccessType, MemoryRequest


def drive(model, gap, ops, read_ratio=1.0):
    reads_acc = 0
    last = 0.0
    read_latencies = []
    for i in range(ops):
        target = round((i + 1) * read_ratio)
        is_read = target > reads_acc
        if is_read:
            reads_acc += 1
        latency = model.access(
            MemoryRequest(
                i * 64,
                AccessType.READ if is_read else AccessType.WRITE,
                i * gap,
            )
        )
        last = max(last, i * gap + latency)
        if is_read:
            read_latencies.append(latency)
    return ops * 64 / last, read_latencies


class TestRamulatorAnalog:
    def test_flat_latency_at_any_load(self):
        """Paper: fixed ~25 ns in the whole bandwidth area."""
        model = RamulatorAnalog(latency_ns=25.0, theoretical_gbps=128.0)
        _, low = drive(model, gap=10.0, ops=500)
        model.reset()
        _, high = drive(model, gap=0.8, ops=500)
        assert low[-1] == pytest.approx(25.0)
        assert high[-1] == pytest.approx(25.0)

    def test_bandwidth_exceeds_theoretical(self):
        """Paper: simulated bandwidth 1.8x the theoretical maximum."""
        model = RamulatorAnalog(theoretical_gbps=128.0, bandwidth_headroom=1.8)
        bandwidth, _ = drive(model, gap=0.2, ops=5000)
        assert bandwidth > 128.0
        assert bandwidth <= 1.8 * 128.0 * 1.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RamulatorAnalog(latency_ns=0)


class TestDRAMsim3Analog:
    def test_latency_grows_linearly_without_saturation_knee(self):
        model = DRAMsim3Analog(theoretical_gbps=128.0)
        points = []
        for gap in (4.0, 2.0, 1.0):
            model.reset()
            bandwidth, latencies = drive(model, gap=gap, ops=3000)
            points.append((bandwidth, latencies[-1]))
        # latency increases with bandwidth...
        assert points[0][1] < points[-1][1]
        # ...but modestly (linear, not exploding)
        assert points[-1][1] < 4 * points[0][1]

    def test_bandwidth_ceiling_below_theoretical(self):
        model = DRAMsim3Analog(theoretical_gbps=128.0, ceiling_fraction=0.88)
        bandwidth, _ = drive(model, gap=0.2, ops=6000)
        assert bandwidth <= 128.0 * 0.88 * 1.05

    def test_intermediate_mix_slower_than_extremes(self):
        """Paper Figure 7: highest hit rates at the extreme mixes."""
        model = DRAMsim3Analog(theoretical_gbps=128.0)
        _, pure = drive(model, gap=2.0, ops=3000, read_ratio=1.0)
        model.reset()
        _, mixed = drive(model, gap=2.0, ops=3000, read_ratio=0.75)
        assert mixed[-1] > pure[-1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DRAMsim3Analog(ceiling_fraction=0)


class TestRamulator2Analog:
    def test_bandwidth_wall_below_half(self):
        """Paper: sharp wall below half the real system's bandwidth."""
        model = Ramulator2Analog(theoretical_gbps=307.0, wall_fraction=0.42)
        bandwidth, _ = drive(model, gap=0.15, ops=6000)
        assert bandwidth <= 307.0 * 0.42 * 1.05

    def test_writes_modeled_too_cheap(self):
        """Paper: the error increases with the write ratio."""
        model = Ramulator2Analog(theoretical_gbps=307.0)
        write_latency = model.access(
            MemoryRequest(0, AccessType.WRITE, 0.0)
        )
        model.reset()
        read_latency = model.access(MemoryRequest(0, AccessType.READ, 0.0))
        assert write_latency < read_latency

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Ramulator2Analog(write_discount_ns=100.0, base_latency_ns=18.0)
