"""Unit tests for the fixed / M/D/1 / gem5-simple / internal-DDR models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memmodels.base import MemoryModelStats
from repro.memmodels.fixed import FixedLatencyModel
from repro.memmodels.internal_ddr import InternalDdrModel
from repro.memmodels.md1 import MD1QueueModel
from repro.memmodels.queueing import ArrivalRateEstimator, SingleServerQueue
from repro.memmodels.simple_bw import SimpleBandwidthModel
from repro.request import AccessType, MemoryRequest


def read(address, at):
    return MemoryRequest(address, AccessType.READ, at)


def write(address, at):
    return MemoryRequest(address, AccessType.WRITE, at)


def drive(model, gap, ops, write_every=0):
    latencies = []
    for i in range(ops):
        req = (
            write(i * 64, i * gap)
            if write_every and i % write_every == 0
            else read(i * 64, i * gap)
        )
        latencies.append(model.access(req))
    return latencies


class TestFixedLatency:
    def test_constant_regardless_of_load(self):
        model = FixedLatencyModel(latency_ns=42.0)
        latencies = drive(model, gap=0.1, ops=500)
        assert set(latencies) == {42.0}

    def test_unbounded_bandwidth(self):
        """The paper's criticism: bandwidth exceeds any physical limit."""
        model = FixedLatencyModel(latency_ns=42.0)
        drive(model, gap=0.05, ops=2000)  # offered 1280 GB/s
        assert model.stats.bandwidth_gbps > 500

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedLatencyModel(latency_ns=0)


class TestMD1:
    def test_unloaded_latency_at_low_rate(self):
        model = MD1QueueModel(unloaded_latency_ns=30.0, peak_bandwidth_gbps=100)
        latencies = drive(model, gap=50.0, ops=300)
        assert latencies[-1] == pytest.approx(30.0, rel=0.05)

    def test_latency_grows_with_utilization(self):
        model = MD1QueueModel(unloaded_latency_ns=30.0, peak_bandwidth_gbps=100)
        low = drive(model, gap=10.0, ops=500)[-1]
        model.reset()
        high = drive(model, gap=0.7, ops=500)[-1]
        assert high > low

    def test_latency_finite_beyond_capacity(self):
        model = MD1QueueModel(unloaded_latency_ns=30.0, peak_bandwidth_gbps=100)
        latencies = drive(model, gap=0.1, ops=2000)
        assert latencies[-1] < 1e6

    def test_writes_slightly_penalized(self):
        model = MD1QueueModel(
            unloaded_latency_ns=30.0,
            peak_bandwidth_gbps=100,
            write_service_inflation=1.5,
        )
        drive(model, gap=1.0, ops=2000, write_every=2)
        mixed = model.stats.mean_latency_ns
        model.reset()
        drive(model, gap=1.0, ops=2000)
        reads = model.stats.mean_latency_ns
        assert mixed > reads

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MD1QueueModel(max_utilization=1.0)


class TestSimpleBandwidth:
    def test_writes_cheaper_than_reads(self):
        """gem5-simple's inverted write behaviour (Figure 4b)."""
        model = SimpleBandwidthModel(
            read_latency_ns=30.0, write_latency_ns=4.0, peak_bandwidth_gbps=100
        )
        read_latency = model.access(read(0, 0.0))
        write_latency = model.access(write(64, 100.0))
        assert write_latency < read_latency

    def test_bandwidth_capped_by_pipe(self):
        model = SimpleBandwidthModel(peak_bandwidth_gbps=50.0)
        last = 0.0
        for i in range(3000):
            latency = model.access(read(i * 64, i * 0.2))
            last = max(last, i * 0.2 + latency)
        assert 3000 * 64 / last <= 50.0 * 1.05


class TestInternalDdr:
    def test_saturates_below_theoretical(self):
        """The paper: internal DDR underestimates the saturated area."""
        model = InternalDdrModel(
            peak_bandwidth_gbps=128.0, channels=6, inefficiency=0.78
        )
        last = 0.0
        for i in range(6000):
            latency = model.access(read(i * 64, i * 0.1))
            last = max(last, i * 0.1 + latency)
        achieved = 6000 * 64 / last
        assert achieved <= 128.0 * 0.78 * 1.05

    def test_mixed_traffic_overpenalized(self):
        """Every direction switch pays the turnaround, unbatched."""
        model = InternalDdrModel(peak_bandwidth_gbps=128.0, channels=6)
        # write_every must be coprime with the channel count, or the
        # line-interleaved channels would segregate reads from writes
        drive(model, gap=1.0, ops=3000, write_every=5)
        mixed = model.stats.mean_latency_ns
        model.reset()
        drive(model, gap=1.0, ops=3000)
        reads = model.stats.mean_latency_ns
        assert mixed > reads * 1.1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InternalDdrModel(inefficiency=0.0)


class TestQueueing:
    def test_single_server_waits_accumulate(self):
        queue = SingleServerQueue(service_ns=10.0)
        assert queue.admit(0.0) == 0.0
        assert queue.admit(0.0) == 10.0
        assert queue.admit(0.0) == 20.0

    def test_idle_server_no_wait(self):
        queue = SingleServerQueue(service_ns=10.0)
        queue.admit(0.0)
        assert queue.admit(100.0) == 0.0

    def test_arrival_rate_estimator(self):
        estimator = ArrivalRateEstimator(alpha=1.0)
        estimator.observe(0.0)
        estimator.observe(2.0)
        assert estimator.rate_per_ns == pytest.approx(0.5)

    def test_estimator_empty(self):
        assert ArrivalRateEstimator().rate_per_ns == 0.0


class TestStats:
    def test_record_accumulates(self):
        stats = MemoryModelStats()
        stats.record(read(0, 0.0), 10.0)
        stats.record(write(64, 5.0), 2.0)
        assert stats.accesses == 2
        assert stats.read_ratio == 0.5
        assert stats.mean_latency_ns == 6.0
        assert stats.bytes_transferred == 128

    def test_bandwidth_over_active_interval(self):
        stats = MemoryModelStats()
        stats.record(read(0, 0.0), 10.0)
        stats.record(read(64, 100.0), 28.0)
        # 128 bytes over (100 + 28) ns
        assert stats.bandwidth_gbps == pytest.approx(1.0)

    def test_idle_stats(self):
        stats = MemoryModelStats()
        assert stats.bandwidth_gbps == 0.0
        assert stats.mean_latency_ns == 0.0
        assert stats.read_ratio == 1.0
