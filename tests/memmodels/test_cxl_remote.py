"""Unit tests for the CXL expander and remote-socket models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memmodels.cxl import CxlExpanderModel
from repro.memmodels.cycle_accurate import CycleAccurateModel
from repro.memmodels.remote_socket import RemoteSocketModel
from repro.dram.timing import DDR4_2666
from repro.request import AccessType, MemoryRequest


def drive_ratio(model, read_ratio, gap, ops, streams=4):
    reads_acc = 0
    last = 0.0
    positions = [0] * streams
    for i in range(ops):
        stream = i % streams
        address = stream * (4 << 20) + positions[stream] * 64
        positions[stream] += 1
        target = round((i + 1) * read_ratio)
        is_read = target > reads_acc
        if is_read:
            reads_acc += 1
        latency = model.access(
            MemoryRequest(
                address,
                AccessType.READ if is_read else AccessType.WRITE,
                i * gap,
            )
        )
        last = max(last, i * gap + latency)
    return ops * 64 / last


class TestCxlDuplex:
    def test_balanced_traffic_beats_one_sided(self):
        """The paper's distinguishing CXL behaviour (Section V-C)."""
        balanced = drive_ratio(CxlExpanderModel(), 0.5, gap=0.6, ops=6000)
        reads_only = drive_ratio(CxlExpanderModel(), 1.0, gap=0.6, ops=6000)
        writes_only = drive_ratio(CxlExpanderModel(), 0.0, gap=0.6, ops=6000)
        assert balanced > reads_only
        assert balanced > writes_only

    def test_one_direction_capped_by_link(self):
        model = CxlExpanderModel(link_gbps_per_direction=27.0)
        bandwidth = drive_ratio(model, 1.0, gap=0.6, ops=6000)
        assert bandwidth <= 27.0 * 1.1

    def test_peak_bandwidth_property(self):
        model = CxlExpanderModel(link_gbps_per_direction=27.0)
        assert model.peak_bandwidth_gbps == pytest.approx(
            min(54.0, model.backend.peak_bandwidth_gbps)
        )

    def test_read_latency_includes_port(self):
        model = CxlExpanderModel(port_latency_ns=85.0)
        latency = model.access(MemoryRequest(0, AccessType.READ, 0.0))
        assert latency >= 85.0

    def test_write_ack_does_not_wait_for_dram(self):
        model = CxlExpanderModel(write_ack_latency_ns=30.0)
        latency = model.access(MemoryRequest(0, AccessType.WRITE, 0.0))
        assert latency == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CxlExpanderModel(link_gbps_per_direction=0)


class TestRemoteSocket:
    def test_higher_unloaded_latency_than_cxl(self):
        """Appendix B: +~28 ns in the low-bandwidth region."""
        cxl = CxlExpanderModel().access(MemoryRequest(0, AccessType.READ, 0.0))
        remote = RemoteSocketModel().access(
            MemoryRequest(0, AccessType.READ, 0.0)
        )
        assert remote > cxl + 15.0

    def test_higher_bandwidth_ceiling_than_cxl(self):
        """Appendix B: the remote node out-muscles an x8 CXL device."""
        assert (
            RemoteSocketModel(link_gbps_per_direction=58.0).peak_bandwidth_gbps
            > CxlExpanderModel().peak_bandwidth_gbps
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RemoteSocketModel(hop_latency_ns=0)


class TestCycleAccurateAdapter:
    def test_row_buffer_stats_exposed(self):
        model = CycleAccurateModel(DDR4_2666, channels=2)
        model.access(MemoryRequest(0, AccessType.READ, 0.0))
        model.access(MemoryRequest(64 * 16, AccessType.READ, 100.0))
        assert model.row_buffer_stats().total == 2

    def test_reset_clears_controller(self):
        model = CycleAccurateModel(DDR4_2666, channels=2)
        model.access(MemoryRequest(0, AccessType.READ, 0.0))
        model.reset()
        assert model.row_buffer_stats().total == 0
        assert model.stats.accesses == 0

    def test_name_describes_configuration(self):
        model = CycleAccurateModel(DDR4_2666, channels=6)
        assert "DDR4-2666" in model.name
        assert "6" in model.name
