"""Tests for the Optane persistent-memory model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memmodels.optane import XPLINE_BYTES, OptaneModel
from repro.platforms.presets import optane_family
from repro.request import AccessType, MemoryRequest


def read(address, at):
    return MemoryRequest(address, AccessType.READ, at)


def write(address, at):
    return MemoryRequest(address, AccessType.WRITE, at)


class TestLatency:
    def test_random_reads_pay_media_latency(self):
        model = OptaneModel()
        latency = model.access(read(0, 0.0))
        assert latency == pytest.approx(305.0)

    def test_xpline_buffered_read_is_faster(self):
        model = OptaneModel()
        model.access(read(0, 0.0))
        # the next line of the same 256-byte XPLine hits the buffer
        latency = model.access(read(64, 1000.0))
        assert latency == pytest.approx(170.0)

    def test_different_xpline_misses_buffer(self):
        model = OptaneModel(dimms=1)
        model.access(read(0, 0.0))
        latency = model.access(read(XPLINE_BYTES, 1000.0))
        assert latency == pytest.approx(305.0)

    def test_much_slower_than_dram(self):
        assert OptaneModel().access(read(0, 0.0)) > 150.0


class TestBandwidth:
    def _sustained(self, model, access_type, ops=4000, gap=1.0):
        last = 0.0
        for i in range(ops):
            request = MemoryRequest(i * 64, access_type, i * gap)
            last = max(last, i * gap + model.access(request))
        return ops * 64 / last

    def test_read_bandwidth_capped(self):
        model = OptaneModel(dimms=2, read_bandwidth_gbps_per_dimm=6.6)
        achieved = self._sustained(model, AccessType.READ)
        assert achieved <= 13.2 * 1.05

    def test_write_bandwidth_much_lower(self):
        reads = self._sustained(OptaneModel(), AccessType.READ)
        writes = self._sustained(OptaneModel(), AccessType.WRITE)
        assert writes < 0.6 * reads

    def test_write_queue_absorbs_bursts(self):
        model = OptaneModel()
        first = model.access(write(0, 0.0))
        assert first == pytest.approx(60.0)  # queued, not media-bound

    def test_peak_properties(self):
        model = OptaneModel(dimms=2)
        assert model.peak_read_bandwidth_gbps == pytest.approx(13.2)
        assert model.peak_write_bandwidth_gbps == pytest.approx(4.6)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            OptaneModel(dimms=0)
        with pytest.raises(ConfigurationError):
            OptaneModel(random_read_ns=10.0, sequential_read_ns=100.0)

    def test_reset(self):
        model = OptaneModel()
        model.access(read(0, 0.0))
        model.reset()
        assert model.stats.accesses == 0
        # XPLine buffer cleared: first read is random again
        assert model.access(read(64, 0.0)) == pytest.approx(305.0)


class TestFamilyPreset:
    def test_write_heavy_mixes_slower(self):
        family = optane_family()
        peaks = {c.read_ratio: c.max_bandwidth_gbps for c in family}
        assert peaks[1.0] > peaks[0.5] * 1.5

    def test_latencies_beyond_dram(self):
        family = optane_family()
        assert family.unloaded_latency_ns > 300.0
        assert family.max_bandwidth_gbps < 15.0
