"""CLI workflows added with the whole-program pass: SARIF output,
the baseline ratchet and PR-scoped ``--changed-only`` runs."""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.cli import main

DIRTY = "x = latency_ns + cas_cycles\n"
CLEAN = "total_ns = a_ns + b_ns\n"


def check(*argv):
    return main(["check", "--no-cache", *argv])


class TestSarifOutput:
    def test_sarif_format_emits_a_2_1_0_log(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(DIRTY)
        assert check("--format", "sarif", str(target)) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "RPR001"
        uri = result["locations"][0]["physicalLocation"]["artifactLocation"][
            "uri"
        ]
        assert uri.endswith("bad.py")

    def test_clean_tree_sarif_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert check("--format", "sarif", str(tmp_path)) == 0
        assert json.loads(capsys.readouterr().out)["runs"][0]["results"] == []


class TestBaselineWorkflow:
    def test_adopt_then_ratchet(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        assert check("--write-baseline", str(baseline), str(target)) == 0
        assert check("--baseline", str(baseline), str(target)) == 0
        out = capsys.readouterr().out
        assert "no new findings" in out
        assert "1 baselined" in out

    def test_new_finding_fails_against_baseline(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        assert check("--write-baseline", str(baseline), str(target)) == 0
        target.write_text(DIRTY + "y = total_us + span_ns\n")
        assert check("--baseline", str(baseline), str(target)) == 1
        out = capsys.readouterr().out.splitlines()
        assert any("1 new finding" in line for line in out)

    def test_fixed_finding_reports_stale_entries(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        assert check("--write-baseline", str(baseline), str(target)) == 0
        target.write_text(CLEAN)
        assert check("--baseline", str(baseline), str(target)) == 0
        assert "stale baseline" in capsys.readouterr().out

    def test_unreadable_baseline_is_a_usage_error(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text(CLEAN)
        assert check("--baseline", str(tmp_path / "nope.json"), str(target)) == 2
        assert capsys.readouterr().err.startswith("error: ")


@pytest.fixture
def git_tree(tmp_path, monkeypatch):
    def git(*argv):
        subprocess.run(
            ["git", *argv],
            cwd=tmp_path,
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(tmp_path),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )

    git("init", "-q")
    (tmp_path / "committed.py").write_text(DIRTY)
    git("add", "committed.py")
    git("commit", "-qm", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestChangedOnly:
    def test_only_changed_files_report(self, git_tree, capsys):
        # committed.py has a finding but is unchanged; new.py is dirty
        # and new — only new.py may be reported.
        (git_tree / "new.py").write_text("y = total_us + span_ns\n")
        assert check("--changed-only", str(git_tree)) == 1
        out = capsys.readouterr().out
        assert "new.py" in out
        assert "committed.py" not in out

    def test_clean_when_nothing_changed(self, git_tree, capsys):
        assert check("--changed-only", str(git_tree)) == 0
        assert "clean" in capsys.readouterr().out

    def test_program_rules_cross_into_unchanged_files(self, git_tree, capsys):
        # The graph is built over the full tree: a *changed* digest
        # root reaching an *unchanged* sink file must still be caught,
        # anchored at the unchanged file — and therefore filtered; the
        # guarantee is that analysis ran, so a changed sink reports.
        pkg = git_tree / "repro"
        pkg.mkdir()
        (pkg / "helpers.py").write_text(
            "import time\n"
            "def stamp(x):\n"
            "    return time.time()\n"
        )
        (pkg / "specs.py").write_text(
            "from repro.helpers import stamp\n"
            "def digest(x):\n"
            "    return stamp(x)\n"
        )
        assert check("--changed-only", "--rules", "RPR010", str(pkg)) == 1
        assert "helpers.py" in capsys.readouterr().out
