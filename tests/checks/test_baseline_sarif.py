"""Baseline ratchet round-trip and SARIF 2.1.0 serialization."""

from __future__ import annotations

import json

import pytest

from repro.checks.baseline import compare, load_baseline, write_baseline
from repro.checks.engine import Finding
from repro.checks.sarif import fingerprint, render_sarif, to_sarif
from repro.errors import CheckError


def finding(path="src/x.py", line=3, rule="RPR001", message="mixed units"):
    return Finding(
        path=path, line=line, col=1, rule_id=rule, message=message,
        hint="use repro.units",
    )


class TestBaseline:
    def test_round_trip_baselines_everything(self, tmp_path):
        findings = [finding(), finding(rule="RPR005", message="float ==")]
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        comparison = compare(findings, load_baseline(path))
        assert comparison.new == []
        assert len(comparison.baselined) == 2
        assert comparison.stale == 0

    def test_new_finding_is_not_baselined(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding()])
        fresh = finding(path="src/y.py", message="other problem")
        comparison = compare([finding(), fresh], load_baseline(path))
        assert comparison.new == [fresh]

    def test_line_moves_do_not_invalidate_the_baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding(line=3)])
        comparison = compare([finding(line=40)], load_baseline(path))
        assert comparison.new == []

    def test_counts_ratchet_duplicate_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding()])
        # a second identical finding appears: one slot, two findings
        comparison = compare([finding(), finding()], load_baseline(path))
        assert len(comparison.new) == 1
        assert len(comparison.baselined) == 1

    def test_fixed_findings_surface_as_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding(), finding(rule="RPR005")])
        comparison = compare([finding()], load_baseline(path))
        assert comparison.stale == 1

    def test_malformed_baseline_is_a_check_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{}")
        with pytest.raises(CheckError):
            load_baseline(path)

    def test_missing_baseline_is_a_check_error(self, tmp_path):
        with pytest.raises(CheckError):
            load_baseline(tmp_path / "absent.json")


class TestSarif:
    def test_log_shape_and_rule_table(self):
        findings = [finding(), finding(rule="RPR005", message="float ==")]
        log = to_sarif(findings)
        assert log["version"] == "2.1.0"
        assert "2.1.0" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-check"
        assert [r["id"] for r in driver["rules"]] == ["RPR001", "RPR005"]
        assert len(run["results"]) == 2

    def test_result_location_is_one_based(self):
        log = to_sarif([finding(line=3)])
        region = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] == 1

    def test_rule_index_points_into_rules_array(self):
        findings = [finding(rule="RPR005"), finding(rule="RPR001")]
        log = to_sarif(findings)
        (run,) = log["runs"]
        for result in run["results"]:
            descriptor = run["tool"]["driver"]["rules"][result["ruleIndex"]]
            assert descriptor["id"] == result["ruleId"]

    def test_fingerprints_are_stable_across_line_moves(self):
        assert fingerprint(finding(line=3)) == fingerprint(finding(line=99))
        assert fingerprint(finding()) != fingerprint(
            finding(message="different")
        )

    def test_render_is_valid_json(self):
        payload = json.loads(render_sarif([finding()]))
        assert payload["runs"][0]["results"][0]["ruleId"] == "RPR001"

    def test_empty_findings_still_produce_a_valid_run(self):
        log = to_sarif([])
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []

    def test_validates_against_sarif_schema_if_available(self):
        schema_path = "tests/checks/data/sarif-schema-2.1.0.json"
        jsonschema = pytest.importorskip("jsonschema")
        try:
            schema = json.loads(open(schema_path).read())
        except OSError:
            pytest.skip("no local SARIF schema copy")
        jsonschema.validate(to_sarif([finding()]), schema)
