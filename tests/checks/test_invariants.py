"""Declarative validators: platform specs, curve families, manifests."""

from __future__ import annotations

import json

from repro.checks import (
    check_curve_family,
    check_fault_plan,
    check_fault_plan_file,
    check_json_file,
    check_manifest,
    check_manifest_file,
    check_platform_spec,
    check_scenario,
)
from repro.core.curve import BandwidthLatencyCurve
from repro.core.family import CurveFamily
from repro.platforms.presets import TABLE_I_PLATFORMS, family
from repro.platforms.spec import PlatformSpec, WaveformSpec
from repro.runner import RunManifest
from repro.runner.manifest import ExperimentRecord


def spec_with(**overrides) -> PlatformSpec:
    base = dict(
        name="Test",
        vendor="x",
        released=2020,
        cores=8,
        frequency_ghz=2.0,
        memory="DDR4",
        channels=6,
        theoretical_bw_gbps=128.0,
        unloaded_latency_ns=90.0,
        max_latency_range_ns=(300.0, 500.0),
        saturated_bw_range_pct=(80.0, 90.0),
        stream_range_pct=(70.0, 80.0),
    )
    base.update(overrides)
    return PlatformSpec(**base)


class TestPlatformSpecRPR101:
    def test_table_i_specs_are_all_valid(self):
        for spec in TABLE_I_PLATFORMS:
            assert check_platform_spec(spec) == []

    def test_fires_on_unsorted_read_ratios(self):
        spec = spec_with(read_ratios=(1.0, 0.5))
        assert any(
            "not sorted" in f.message for f in check_platform_spec(spec)
        )

    def test_fires_on_max_latency_below_unloaded(self):
        spec = spec_with(max_latency_range_ns=(50.0, 500.0))
        findings = check_platform_spec(spec)
        assert [f.rule_id for f in findings] == ["RPR101"]

    def test_fires_on_waveform_out_of_range(self):
        spec = spec_with(waveform=WaveformSpec(depth_fraction=1.5))
        assert any(
            "depth_fraction" in f.message for f in check_platform_spec(spec)
        )
        spec = spec_with(waveform=WaveformSpec(points=0))
        assert any("point" in f.message for f in check_platform_spec(spec))


class TestCurveFamilyRPR102:
    def test_generated_table_i_families_are_plausible(self):
        # The property used to falsify Ramulator 2.0's curves must hold
        # for every family this package generates.
        for spec in TABLE_I_PLATFORMS:
            assert check_curve_family(family(spec), spec) == []

    def test_fires_on_latency_dropping_under_pressure(self):
        bad = CurveFamily(
            [BandwidthLatencyCurve(1.0, [10.0, 20.0, 30.0], [90.0, 60.0, 120.0])],
            name="bad",
        )
        findings = check_curve_family(bad)
        assert [f.rule_id for f in findings] == ["RPR102"]
        assert "latency drops" in findings[0].message

    def test_silent_on_waveform_tail(self):
        # Post-peak bandwidth decline with rising latency is the
        # documented anomaly, not a violation.
        good = CurveFamily(
            [
                BandwidthLatencyCurve(
                    1.0,
                    [10.0, 60.0, 100.0, 95.0, 90.0],
                    [90.0, 110.0, 200.0, 260.0, 300.0],
                )
            ],
            name="waveform",
        )
        assert check_curve_family(good) == []

    def test_fires_on_bandwidth_above_theoretical(self):
        family_obj = CurveFamily(
            [BandwidthLatencyCurve(1.0, [10.0, 150.0], [90.0, 200.0])],
            name="over",
            theoretical_bandwidth_gbps=100.0,
        )
        assert any(
            "theoretical" in f.message for f in check_curve_family(family_obj)
        )

    def test_fires_on_unloaded_latency_off_spec(self):
        spec = spec_with(unloaded_latency_ns=90.0)
        family_obj = CurveFamily(
            [BandwidthLatencyCurve(1.0, [10.0, 50.0], [200.0, 400.0])],
            name="late",
        )
        assert any(
            "Table I" in f.message
            for f in check_curve_family(family_obj, spec)
        )


class TestManifestRPR103:
    def manifest_payload(self) -> dict:
        manifest = RunManifest(jobs=2, package_version="1.1.0")
        manifest.records.append(
            ExperimentRecord(
                experiment_id="fig2",
                status="ok",
                duration_s=1.0,
                rows=10,
                result_digest="ab" * 16,
            )
        )
        return manifest.to_dict()

    def test_real_manifest_is_valid(self):
        assert check_manifest(self.manifest_payload()) == []

    def test_fires_on_missing_environment_header(self):
        payload = self.manifest_payload()
        del payload["python_version"]
        findings = check_manifest(payload)
        assert any("python_version" in f.message for f in findings)

    def test_fires_on_bad_status_and_digest(self):
        payload = self.manifest_payload()
        payload["experiments"][0]["status"] = "crashed"
        payload["experiments"][0]["result_digest"] = "not hex!"
        messages = " ".join(f.message for f in check_manifest(payload))
        assert "status" in messages and "hex digest" in messages

    def test_fires_on_error_without_message(self):
        payload = self.manifest_payload()
        payload["experiments"][0]["status"] = "error"
        payload["experiments"][0]["error"] = None
        assert any(
            "no error message" in f.message for f in check_manifest(payload)
        )

    def test_manifest_file_roundtrip_and_corruption(self, tmp_path):
        good = tmp_path / "manifest.json"
        good.write_text(json.dumps(self.manifest_payload()))
        assert check_manifest_file(good) == []
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        findings = check_manifest_file(bad)
        assert findings and findings[0].rule_id == "RPR103"


class TestScenarioRPR104:
    def scenario_payload(self) -> dict:
        from repro.scenario import preset_scenario

        return preset_scenario("skylake-substrate").to_spec()

    def test_valid_scenario_is_clean(self):
        assert check_scenario(self.scenario_payload()) == []

    def test_fires_on_unknown_memory_kind(self):
        payload = self.scenario_payload()
        payload["memory"]["kind"] = "sram"
        findings = check_scenario(payload)
        assert findings and findings[0].rule_id == "RPR104"
        assert "sram" in findings[0].message

    def test_fires_on_non_object(self):
        findings = check_scenario([1, 2, 3])
        assert findings and findings[0].rule_id == "RPR104"

    def test_fires_on_unknown_key(self):
        payload = self.scenario_payload()
        payload["bogus"] = 1
        findings = check_scenario(payload)
        assert any("bogus" in f.message for f in findings)


class TestCacheGeometryRPR102:
    """Plausibility rules for the cache axis: fire on implausible
    geometry, stay silent on the digest-frozen defaults."""

    def scenario_payload(self, default_geometry: bool = False) -> dict:
        from repro.scenario import preset_scenario

        payload = preset_scenario("skylake-substrate").to_spec()
        if default_geometry:
            # the historical default LLC: 33 MiB, 11 ways -> 49152
            # sets, neither a power of two
            payload["system"]["hierarchy"]["l3"] = {
                "size_bytes": 33 * 1024 * 1024,
                "ways": 11,
                "latency_ns": 18.0,
            }
        return payload

    def test_default_geometry_is_silent(self):
        # without an explicit cache model the pow2 rules must not
        # flag the digest-frozen default geometry
        payload = self.scenario_payload(default_geometry=True)
        assert check_scenario(payload) == []

    def test_non_default_cache_with_non_pow2_ways_fires(self):
        payload = self.scenario_payload(default_geometry=True)
        payload["system"]["cache"] = {"policy": "random"}
        findings = check_scenario(payload)
        assert findings
        assert all(f.rule_id == "RPR102" for f in findings)
        assert any("ways" in f.message for f in findings)

    def test_capacity_inversion_fires(self):
        payload = self.scenario_payload()
        payload["system"]["hierarchy"]["l2"]["size_bytes"] = 16 * 1024
        findings = check_scenario(payload)
        assert any(
            f.rule_id == "RPR102" and "smaller" in f.message.lower()
            or f.rule_id == "RPR102" and "capacity" in f.message.lower()
            for f in findings
        )

    def test_latency_inversion_fires(self):
        payload = self.scenario_payload()
        payload["system"]["hierarchy"]["l3"]["latency_ns"] = 0.5
        findings = check_scenario(payload)
        assert any(
            f.rule_id == "RPR102" and "latency" in f.message.lower()
            for f in findings
        )

    def test_pow2_geometry_with_non_default_cache_is_silent(self):
        from repro.scenario import characterization

        scenario = characterization(
            name="pow2", memory_kind="fixed-latency", cache={"policy": "plru"}
        )
        findings = check_scenario(scenario.to_spec())
        assert findings == []


class TestJsonDispatch:
    def test_scenario_marker_routes_to_rpr104(self, tmp_path):
        from repro.scenario import preset_scenario

        path = tmp_path / "scn.json"
        payload = preset_scenario("hbm-substrate").to_spec()
        payload["memory"]["kind"] = "sram"
        path.write_text(json.dumps(payload))
        findings = check_json_file(path)
        assert findings and findings[0].rule_id == "RPR104"

    def test_plain_json_routes_to_rpr103(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        findings = check_json_file(path)
        assert findings and all(f.rule_id == "RPR103" for f in findings)


class TestManifestFailureTaxonomy:
    def failed_payload(self) -> dict:
        manifest = RunManifest(jobs=1, package_version="1.1.0")
        manifest.records.append(
            ExperimentRecord(
                experiment_id="fig2",
                status="error",
                error="boom",
                failure_kind="crash",
                attempts=2,
            )
        )
        return manifest.to_dict()

    def test_classified_failure_is_valid(self):
        assert check_manifest(self.failed_payload()) == []

    def test_fires_on_unknown_failure_kind(self):
        payload = self.failed_payload()
        payload["experiments"][0]["failure_kind"] = "gremlin"
        messages = " ".join(f.message for f in check_manifest(payload))
        assert "failure_kind" in messages and "gremlin" in messages

    def test_fires_on_non_positive_attempts(self):
        payload = self.failed_payload()
        payload["experiments"][0]["attempts"] = 0
        assert any(
            "attempts" in f.message for f in check_manifest(payload)
        )


class TestFaultPlanRPR105:
    def plan_payload(self) -> dict:
        from repro.resilience import FaultPlan, FaultSpec

        return FaultPlan(
            seed=7, faults=(FaultSpec(kind="crash", target="fig2"),)
        ).to_dict()

    def test_valid_plan_is_clean(self):
        assert check_fault_plan(self.plan_payload()) == []

    def test_fires_on_unknown_fault_kind(self):
        payload = self.plan_payload()
        payload["faults"][0]["kind"] = "meteor"
        findings = check_fault_plan(payload)
        assert findings and findings[0].rule_id == "RPR105"
        assert "meteor" in findings[0].message

    def test_fires_on_empty_plan(self):
        payload = self.plan_payload()
        payload["faults"] = []
        findings = check_fault_plan(payload)
        assert findings and "no faults" in findings[0].message

    def test_fires_on_non_object(self):
        findings = check_fault_plan([1, 2])
        assert findings and findings[0].rule_id == "RPR105"

    def test_fault_plan_marker_routes_dispatch(self, tmp_path):
        path = tmp_path / "plan.json"
        payload = self.plan_payload()
        payload["faults"][0]["probability"] = 2.0
        path.write_text(json.dumps(payload))
        findings = check_json_file(path)
        assert findings and findings[0].rule_id == "RPR105"

    def test_fault_plan_file_reports_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        findings = check_fault_plan_file(path)
        assert findings and findings[0].rule_id == "RPR105"
