"""Import/call-graph construction over in-memory module trees."""

from __future__ import annotations

from repro.checks.graph import (
    ModuleSummary,
    ProgramGraph,
    module_names_for,
    summarize_source,
)


def build(files: dict[str, str]) -> ProgramGraph:
    paths = list(files)
    summaries = [summarize_source(files[path]) for path in paths]
    return ProgramGraph.build(summaries, paths)


class TestModuleNaming:
    def test_repro_component_anchors_the_name(self):
        names = module_names_for(
            ["src/repro/core/curve.py", "src/repro/units.py"]
        )
        assert names == ["repro.core.curve", "repro.units"]

    def test_init_names_the_package(self):
        assert module_names_for(["src/repro/core/__init__.py"]) == [
            "repro.core"
        ]

    def test_fixture_trees_use_common_ancestor_relative_names(self):
        names = module_names_for(["proj/app/a.py", "proj/app/sub/b.py"])
        assert names == ["app.a", "app.sub.b"]


class TestCallResolution:
    def test_direct_import_call_resolves(self):
        g = build(
            {
                "pkg/a.py": "from pkg.b import helper\ndef f():\n    helper()\n",
                "pkg/b.py": "def helper():\n    pass\n",
            }
        )
        assert g.edges["pkg.a:f"] == ["pkg.b:helper"]

    def test_aliased_module_import_resolves(self):
        g = build(
            {
                "pkg/a.py": "import pkg.b as bee\ndef f():\n    bee.helper()\n",
                "pkg/b.py": "def helper():\n    pass\n",
            }
        )
        assert g.edges["pkg.a:f"] == ["pkg.b:helper"]

    def test_relative_import_resolves(self):
        g = build(
            {
                "pkg/a.py": "from .b import helper\ndef f():\n    helper()\n",
                "pkg/b.py": "def helper():\n    pass\n",
                "pkg/__init__.py": "",
            }
        )
        assert g.edges["pkg.a:f"] == ["pkg.b:helper"]

    def test_self_method_call_resolves_within_class(self):
        g = build(
            {
                "pkg/a.py": (
                    "class C:\n"
                    "    def f(self):\n"
                    "        self.g()\n"
                    "    def g(self):\n"
                    "        pass\n"
                ),
                "pkg/b.py": "",
            }
        )
        assert g.edges["pkg.a:C.f"] == ["pkg.a:C.g"]

    def test_constructor_call_links_to_init(self):
        g = build(
            {
                "pkg/a.py": "from pkg.b import C\ndef f():\n    C()\n",
                "pkg/b.py": (
                    "class C:\n"
                    "    def __init__(self):\n"
                    "        pass\n"
                ),
            }
        )
        assert g.edges["pkg.a:f"] == ["pkg.b:C.__init__"]

    def test_reexport_through_package_init_resolves(self):
        g = build(
            {
                "pkg/__init__.py": "from .impl import helper\n",
                "pkg/impl.py": "def helper():\n    pass\n",
                "app.py": "import pkg\ndef f():\n    pkg.helper()\n",
            }
        )
        assert g.edges["app:f"] == ["pkg.impl:helper"]

    def test_star_import_resolves(self):
        g = build(
            {
                "pkg/a.py": "from pkg.b import *\ndef f():\n    helper()\n",
                "pkg/b.py": "def helper():\n    pass\n",
            }
        )
        assert g.edges["pkg.a:f"] == ["pkg.b:helper"]

    def test_cycles_terminate(self):
        g = build(
            {
                "pkg/a.py": "from pkg.b import g\ndef f():\n    g()\n",
                "pkg/b.py": "from pkg.a import f\ndef g():\n    f()\n",
            }
        )
        reached, _ = g.reachable(["pkg.a:f"])
        assert reached == {"pkg.a:f", "pkg.b:g", "pkg.a:f"} | {"pkg.b:g"}

    def test_dynamic_calls_degrade_to_no_edge(self):
        # getattr dispatch and dict-of-functions patterns must not
        # crash or invent edges.
        g = build(
            {
                "pkg/a.py": (
                    "def f(table, name):\n"
                    "    getattr(table, name)()\n"
                    "    table[name]()\n"
                ),
                "pkg/b.py": "",
            }
        )
        assert g.edges["pkg.a:f"] == []

    def test_unknown_receiver_falls_back_by_method_name(self):
        g = build(
            {
                "pkg/a.py": "def f(model):\n    model.latency_at(1.0)\n",
                "pkg/b.py": (
                    "class Curve:\n"
                    "    def latency_at(self, bw):\n"
                    "        pass\n"
                ),
            }
        )
        assert g.edges["pkg.a:f"] == ["pkg.b:Curve.latency_at"]

    def test_builtin_container_methods_are_not_fallback_linked(self):
        g = build(
            {
                "pkg/a.py": "def f(seen):\n    seen.update([1])\n",
                "pkg/b.py": (
                    "class Registry:\n"
                    "    def update(self, items):\n"
                    "        pass\n"
                ),
            }
        )
        assert g.edges["pkg.a:f"] == []


class TestParseFailures:
    def test_syntax_error_becomes_parse_error_summary(self):
        summary = summarize_source("def broken(:\n")
        assert summary.parse_error is not None
        assert "line 1" in summary.parse_error
        assert summary.functions == []

    def test_graph_builds_around_a_broken_module(self):
        g = build(
            {
                "pkg/a.py": "def f():\n    pass\n",
                "pkg/broken.py": "def broken(:\n",
            }
        )
        assert "pkg.a:f" in g.functions
        assert g.modules["pkg.broken"].parse_error is not None


class TestSummaryRoundTrip:
    def test_summary_survives_json_round_trip(self):
        source = (
            "import time\n"
            "_STATE = {}\n"
            "async def f(x):\n"
            "    _STATE[x] = time.time()  # repro: ignore[RPR010,RPR011]\n"
        )
        original = summarize_source(source)
        restored = ModuleSummary.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        fn = restored.functions[0]
        assert fn.is_async
        assert fn.sinks[0].kind == "wallclock"
        assert fn.sinks[0].suppress == "RPR010,RPR011"
        assert fn.global_writes[0].name == "_STATE"
