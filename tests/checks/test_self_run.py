"""The merged tree must be clean under its own static-analysis pass."""

from __future__ import annotations

from pathlib import Path

import repro
from repro.checks import run_checks

PACKAGE_DIR = Path(repro.__file__).parent


def test_package_is_clean_under_all_rules():
    findings = run_checks([str(PACKAGE_DIR)])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_every_rule_ran_over_a_nonempty_tree():
    # Guard against the self-run passing vacuously (wrong path, no files).
    sources = [
        p for p in PACKAGE_DIR.rglob("*.py") if "__pycache__" not in p.parts
    ]
    assert len(sources) > 50
    assert (PACKAGE_DIR / "experiments" / "fig2.py").exists()
