"""Driver pipeline: incremental cache, parse failures, changed-only."""

from __future__ import annotations

import json

from repro.checks.cache import AnalysisCache, source_digest
from repro.checks.driver import analyze_paths

CLEAN = "total_ns = a_ns + b_ns\n"
DIRTY = "x = latency_ns + cas_cycles\n"


def test_report_counts_cold_then_warm(tmp_path):
    (tmp_path / "a.py").write_text(CLEAN)
    (tmp_path / "b.py").write_text(DIRTY)
    cache = AnalysisCache(tmp_path / "cache")
    cold = analyze_paths([tmp_path / "a.py", tmp_path / "b.py"], cache=cache)
    assert cold.files_scanned == 2
    assert cold.files_reanalyzed == 2
    assert cold.files_from_cache == 0
    assert [f.rule_id for f in cold.findings] == ["RPR001"]

    warm = analyze_paths([tmp_path / "a.py", tmp_path / "b.py"], cache=cache)
    assert warm.files_reanalyzed == 0
    assert warm.files_from_cache == 2
    # cached findings are identical to fresh ones, path included
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]


def test_cache_invalidates_on_content_change(tmp_path):
    target = tmp_path / "a.py"
    target.write_text(CLEAN)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths([target], cache=cache)
    target.write_text(DIRTY)
    changed = analyze_paths([target], cache=cache)
    assert changed.files_reanalyzed == 1
    assert [f.rule_id for f in changed.findings] == ["RPR001"]


def test_cache_key_depends_on_rule_selection(tmp_path):
    target = tmp_path / "a.py"
    target.write_text(DIRTY)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths([target], rules=["RPR005"], cache=cache)
    # same content, different rules: must NOT reuse the RPR005 entry
    full = analyze_paths([target], cache=cache)
    assert full.files_reanalyzed == 1
    assert [f.rule_id for f in full.findings] == ["RPR001"]


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    target = tmp_path / "a.py"
    target.write_text(DIRTY)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths([target], cache=cache)
    for entry in (tmp_path / "cache").rglob("*.json"):
        entry.write_text("{not json")
    again = analyze_paths([target], cache=cache)
    assert again.files_reanalyzed == 1
    assert [f.rule_id for f in again.findings] == ["RPR001"]


def test_parse_failure_is_a_finding_not_an_abort(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    (tmp_path / "bad.py").write_text(DIRTY)
    report = analyze_paths([tmp_path], use_cache=False)
    rules = [f.rule_id for f in report.findings]
    assert "RPR000" in rules and "RPR001" in rules
    assert report.parse_failures == 1
    rpr000 = next(f for f in report.findings if f.rule_id == "RPR000")
    assert rpr000.line == 1
    assert "broken.py" in rpr000.path


def test_cross_file_duplicate_ids_survive_the_cache(tmp_path):
    # RPR004's duplicate-experiment-id check spans files; a warm cache
    # must not blind it.
    experiments = tmp_path / "experiments"
    experiments.mkdir()
    module = (
        "from .registry import register\n"
        "@register('fig1', cost='cheap')\n"
        "def run(scale=1.0):\n"
        "    pass\n"
    )
    (experiments / "fig1.py").write_text(module)
    (experiments / "fig2.py").write_text(module)
    cache = AnalysisCache(tmp_path / "cache")
    cold = analyze_paths([experiments], cache=cache)
    warm = analyze_paths([experiments], cache=cache)
    cold_dups = [f for f in cold.findings if "duplicate" in f.message]
    warm_dups = [f for f in warm.findings if "duplicate" in f.message]
    assert len(cold_dups) == 1
    assert [f.to_dict() for f in warm_dups] == [f.to_dict() for f in cold_dups]


def test_program_rules_see_cached_summaries(tmp_path):
    # Whole-program taint must keep working when every per-file payload
    # comes from the cache (summaries round-trip through JSON).
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "specs.py").write_text(
        "from repro.helpers import stamp\n"
        "def digest(x):\n"
        "    return stamp(x)\n"
    )
    (pkg / "helpers.py").write_text(
        "import time\n"
        "def stamp(x):\n"
        "    return time.time()\n"
    )
    cache = AnalysisCache(tmp_path / "cache")
    cold = analyze_paths([pkg], cache=cache)
    warm = analyze_paths([pkg], cache=cache)
    assert warm.files_from_cache == 2
    assert [f.rule_id for f in cold.findings] == ["RPR010"]
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]


def test_parallel_jobs_match_serial_results(tmp_path):
    for index in range(20):
        (tmp_path / f"m{index:02d}.py").write_text(
            DIRTY if index % 3 == 0 else CLEAN
        )
    serial = analyze_paths([tmp_path], use_cache=False, jobs=1)
    parallel = analyze_paths([tmp_path], use_cache=False, jobs=4)
    assert [f.to_dict() for f in parallel.findings] == [
        f.to_dict() for f in serial.findings
    ]


def test_digest_is_content_only():
    assert source_digest("x = 1\n") == source_digest("x = 1\n")
    assert source_digest("x = 1\n") != source_digest("x = 2\n")


def test_cache_entries_are_valid_json(tmp_path):
    target = tmp_path / "a.py"
    target.write_text(CLEAN)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths([target], cache=cache)
    entries = list((tmp_path / "cache").rglob("*.json"))
    assert entries
    for entry in entries:
        payload = json.loads(entry.read_text())
        assert "summary" in payload and "findings" in payload
