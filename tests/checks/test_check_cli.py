"""CLI integration for ``repro check`` (and the missing-path contract
shared with ``telemetry summarize``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_check_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("total_ns = a_ns + b_ns\n")
    assert main(["check", str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_check_violation_exits_one_with_location(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text("x = latency_ns + cas_cycles\n")
    assert main(["check", str(target)]) == 1
    out = capsys.readouterr().out
    assert f"{target}:1:" in out
    assert "RPR001" in out
    assert "hint:" in out


def test_check_json_format(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text("x = latency_ns + cas_cycles\n")
    assert main(["check", "--format", "json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "RPR001"
    assert payload[0]["line"] == 1


def test_check_rule_selection(tmp_path, capsys):
    target = tmp_path / "core" / "bad.py"
    target.parent.mkdir()
    target.write_text("import random\nx = a_ns + b_cycles\n")
    assert main(["check", "--rules", "RPR002", str(target)]) == 1
    out = capsys.readouterr().out
    assert "RPR002" in out and "RPR001" not in out


def test_check_missing_path_is_one_line_error(capsys):
    # Satellite contract: usage errors exit 2 (findings exit 1),
    # one-line error, no traceback.
    assert main(["check", "/no/such/path"]) == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error: ")
    assert "Traceback" not in captured.err


def test_check_unknown_rule_is_one_line_error(capsys):
    assert main(["check", "--rules", "RPR999", "src"]) == 2
    assert capsys.readouterr().err.startswith("error: ")


def test_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert rule_id in out


def test_check_validates_manifest_json(tmp_path, capsys):
    bad = tmp_path / "manifest.json"
    bad.write_text(json.dumps({"experiments": [{"status": "nope"}]}))
    assert main(["check", str(bad)]) == 1
    assert "RPR103" in capsys.readouterr().out


def test_telemetry_summarize_missing_path_is_one_line_error(capsys):
    assert main(["telemetry", "summarize", "/no/such/file"]) == 1
    captured = capsys.readouterr()
    assert captured.err.startswith("error: ")
    assert "Traceback" not in captured.err


def test_telemetry_summarize_binary_file_is_one_line_error(tmp_path, capsys):
    blob = tmp_path / "trace.bin"
    blob.write_bytes(b"\xff\xfe\x00\x01")
    assert main(["telemetry", "summarize", str(blob)]) == 1
    assert capsys.readouterr().err.startswith("error: ")


def test_check_rejects_unknown_file_kind(tmp_path, capsys):
    target = tmp_path / "notes.txt"
    target.write_text("hello")
    assert main(["check", str(target)]) == 2
    assert capsys.readouterr().err.startswith("error: ")


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_check_default_target_is_the_package(fmt, capsys):
    # No paths: checks the installed package, which must be clean.
    assert main(["check", "--format", fmt]) == 0
