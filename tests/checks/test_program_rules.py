"""Fixture tests for the whole-program rules (RPR010/011/012).

Each rule gets fire + silent fixtures as in-memory trees; the display
paths drive module naming and package scoping exactly as on disk.
"""

from __future__ import annotations

from repro.checks import check_sources


def rule_ids(files: dict[str, str], rules=None) -> list[str]:
    return [f.rule_id for f in check_sources(files, rules=rules)]


class TestDigestTaintRPR010:
    def test_fires_three_calls_deep_below_a_digest_root(self):
        # The acceptance fixture: time.time() is three frames below a
        # digest-reachable function and still caught, with a chain.
        files = {
            "repro/specs.py": (
                "def canonical_json(obj):\n"
                "    return _encode(obj)\n"
                "def _encode(obj):\n"
                "    return _stamp(obj)\n"
                "def _stamp(obj):\n"
                "    return _now(obj)\n"
                "def _now(obj):\n"
                "    import time\n"
                "    return time.time()\n"
            ),
        }
        findings = check_sources(files, rules=["RPR010"])
        assert [f.rule_id for f in findings] == ["RPR010"]
        message = findings[0].message
        assert "time.time" in message
        assert "_encode -> " in message and "_stamp -> " in message

    def test_fires_across_modules_from_core_root(self):
        files = {
            "repro/core/model.py": (
                "from repro.helpers import jitter\n"
                "def step(x):\n"
                "    return jitter(x)\n"
            ),
            "repro/helpers.py": (
                "import random\n"
                "def jitter(x):\n"
                "    return x + random.random()\n"
            ),
        }
        assert rule_ids(files, rules=["RPR010"]) == ["RPR010"]

    def test_silent_when_sink_is_unreachable(self):
        files = {
            "repro/core/model.py": "def step(x):\n    return x\n",
            "repro/helpers.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
        }
        assert rule_ids(files, rules=["RPR010"]) == []

    def test_silent_for_telemetry_wallclock(self):
        # Telemetry is wall-clock by design; taint must not enter it.
        files = {
            "repro/core/model.py": (
                "from repro.telemetry.clock import stamp\n"
                "def step(x):\n"
                "    return stamp()\n"
            ),
            "repro/telemetry/clock.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
        }
        assert rule_ids(files, rules=["RPR010"]) == []

    def test_suppression_comment_silences_the_sink(self):
        files = {
            "repro/specs.py": (
                "import time\n"
                "def digest(x):\n"
                "    return time.time()  # repro: ignore[RPR010]\n"
            ),
        }
        assert rule_ids(files, rules=["RPR010"]) == []

    def test_unsorted_set_iteration_is_a_sink(self):
        files = {
            "repro/specs.py": (
                "def to_spec(items):\n"
                "    return [x for x in set(items)]\n"
            ),
        }
        assert rule_ids(files, rules=["RPR010"]) == ["RPR010"]

    def test_core_internal_sinks_stay_rpr002_territory(self):
        # Inside core, RPR002 reports per-file; RPR010 must not
        # double-report the same line.
        files = {
            "repro/core/model.py": (
                "import time\n"
                "def step(x):\n"
                "    return time.time()\n"
            ),
        }
        assert rule_ids(files, rules=["RPR010"]) == []
        assert rule_ids(files, rules=["RPR002"]) == ["RPR002"]


class TestSharedStateRacesRPR011:
    def test_fires_on_global_mutated_from_serve_coroutine(self):
        files = {
            "repro/serve/app.py": (
                "_CACHE = {}\n"
                "async def handle(request):\n"
                "    _record(request)\n"
                "def _record(request):\n"
                "    _CACHE[request.key] = request\n"
            ),
        }
        findings = check_sources(files, rules=["RPR011"])
        assert [f.rule_id for f in findings] == ["RPR011"]
        assert "_CACHE" in findings[0].message
        assert "serve coroutine" in findings[0].message

    def test_fires_on_global_rebound_across_pool_boundary(self):
        files = {
            "repro/runner/work.py": (
                "_STATE = None\n"
                "def _worker(item):\n"
                "    global _STATE\n"
                "    _STATE = item\n"
                "def run(pool, items):\n"
                "    return [pool.submit(_worker, item) for item in items]\n"
            ),
        }
        findings = check_sources(files, rules=["RPR011"])
        assert [f.rule_id for f in findings] == ["RPR011"]
        assert "executor-submitted" in findings[0].message

    def test_silent_for_activation_pattern(self):
        files = {
            "repro/serve/app.py": (
                "_ACTIVE = None\n"
                "def activate(plan):\n"
                "    global _ACTIVE\n"
                "    _ACTIVE = plan\n"
                "async def handle(request):\n"
                "    activate(request.plan)\n"
            ),
        }
        assert rule_ids(files, rules=["RPR011"]) == []

    def test_silent_for_local_shadowing_a_global_name(self):
        files = {
            "repro/serve/app.py": (
                "_CACHE = {}\n"
                "async def handle(request):\n"
                "    _CACHE = {}\n"
                "    _CACHE[request.key] = request\n"
            ),
        }
        assert rule_ids(files, rules=["RPR011"]) == []

    def test_silent_outside_racy_contexts(self):
        files = {
            "repro/config.py": (
                "_SETTINGS = {}\n"
                "def configure(key, value):\n"
                "    _SETTINGS[key] = value\n"
            ),
        }
        assert rule_ids(files, rules=["RPR011"]) == []

    def test_suppression_comment_silences_the_write(self):
        files = {
            "repro/serve/app.py": (
                "_HITS = 0\n"
                "async def handle(request):\n"
                "    global _HITS\n"
                "    _HITS += 1  # repro: ignore[RPR011]\n"
            ),
        }
        assert rule_ids(files, rules=["RPR011"]) == []


class TestEngineParityRPR012:
    def test_fires_when_reference_module_is_missing(self):
        files = {
            "proj/engine/curves.py": "def kern_batch(x):\n    return x\n",
        }
        findings = check_sources(files, rules=["RPR012"])
        assert [f.rule_id for f in findings] == ["RPR012"]
        assert "no sibling reference module" in findings[0].message

    def test_fires_on_missing_scalar_twin(self):
        files = {
            "proj/engine/curves.py": "def kern_batch(x):\n    return x\n",
            "proj/engine/reference.py": "def other(x):\n    return x\n",
        }
        messages = [
            f.message for f in check_sources(files, rules=["RPR012"])
        ]
        assert any("no scalar twin" in m for m in messages)
        assert any("no batched twin" in m for m in messages)

    def test_fires_on_signature_drift(self):
        files = {
            "proj/engine/curves.py": (
                "def kern_batch(curve, values, scale=1.0):\n    return values\n"
            ),
            "proj/engine/reference.py": (
                "def kern_batch(curve, values):\n    return values\n"
            ),
        }
        findings = check_sources(files, rules=["RPR012"])
        assert [f.rule_id for f in findings] == ["RPR012"]
        assert "does not match" in findings[0].message

    def test_silent_on_matching_surfaces(self):
        files = {
            "proj/engine/curves.py": (
                "def kern_batch(curve, values, scale=1.0):\n    return values\n"
                "def _private_helper(x):\n    return x\n"
            ),
            "proj/engine/reference.py": (
                "def kern_batch(curve, values, scale=1.0):\n    return values\n"
            ),
        }
        assert rule_ids(files, rules=["RPR012"]) == []

    def test_all_surface_limits_the_parity_set(self):
        files = {
            "proj/engine/curves.py": (
                "def kern_batch(x):\n    return x\n"
                "def helper(x):\n    return x\n"
                "__all__ = ['kern_batch']\n"
            ),
            "proj/engine/reference.py": (
                "def kern_batch(x):\n    return x\n"
            ),
        }
        assert rule_ids(files, rules=["RPR012"]) == []
