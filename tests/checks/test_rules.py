"""Each lint rule must fire on a violating fixture and stay silent on a
conforming one. Fixtures are in-memory snippets; the filename passed to
``check_source`` drives path-based rule scoping."""

from __future__ import annotations

import pytest

from repro.checks import check_source
from repro.errors import CheckError


def rule_ids(source: str, filename: str = "mod.py", rules=None) -> list[str]:
    return [f.rule_id for f in check_source(source, filename=filename, rules=rules)]


class TestUnitSafetyRPR001:
    def test_fires_on_mixed_addition(self):
        assert rule_ids("total = latency_ns + cas_cycles\n") == ["RPR001"]

    def test_fires_on_mixed_subtraction_of_attributes(self):
        src = "delta = self.window_ns - request.size_bytes\n"
        assert rule_ids(src) == ["RPR001"]

    def test_fires_on_mixed_comparison(self):
        assert rule_ids("if peak_gbps > limit_bytes:\n    pass\n") == ["RPR001"]

    def test_fires_on_augmented_assignment(self):
        assert rule_ids("elapsed_ns += duration_us\n") == ["RPR001"]

    def test_fires_on_string_subscript_units(self):
        src = "entry['total_us'] += span_ns\n"
        assert rule_ids(src) == ["RPR001"]

    def test_silent_on_same_unit(self):
        assert rule_ids("total_ns = start_ns + extra_ns\n") == []

    def test_silent_on_conversion_by_division(self):
        # Division/multiplication are how conversions are written.
        assert rule_ids("bw = window_bytes / elapsed_ns\n") == []
        assert rule_ids("ts_us = now_ns / 1e3\n") == []

    def test_silent_when_one_side_has_no_unit(self):
        assert rule_ids("latency = base_ns + overhead\n") == []

    def test_suppression_comment(self):
        src = "x = a_ns + b_cycles  # repro: ignore[RPR001]\n"
        assert rule_ids(src) == []
        src = "x = a_ns + b_cycles  # repro: ignore\n"
        assert rule_ids(src) == []
        # suppressing a different rule does not silence this one
        src = "x = a_ns + b_cycles  # repro: ignore[RPR005]\n"
        assert rule_ids(src) == ["RPR001"]


class TestDeterminismRPR002:
    def test_fires_on_random_import_in_core(self):
        assert rule_ids("import random\n", "core/sim.py") == ["RPR002"]

    def test_fires_on_wall_clock_in_dram(self):
        src = "import time\nnow = time.time()\n"
        assert rule_ids(src, "dram/ctl.py") == ["RPR002"]

    def test_fires_on_unseeded_rng_in_memmodels(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rule_ids(src, "memmodels/model.py") == ["RPR002"]

    def test_fires_on_set_iteration_in_cpu(self):
        src = "for bank in {1, 2, 3}:\n    pass\n"
        assert rule_ids(src, "cpu/core.py") == ["RPR002"]
        src = "order = [b for b in set(banks)]\n"
        assert rule_ids(src, "cpu/core.py") == ["RPR002"]

    def test_silent_on_seeded_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert rule_ids(src, "memmodels/model.py") == []

    def test_silent_on_sorted_set_iteration(self):
        src = "for bank in sorted(set(banks)):\n    pass\n"
        assert rule_ids(src, "cpu/core.py") == []

    def test_silent_outside_the_simulation_core(self):
        # Workloads seed their own RNGs; the rule does not police them.
        assert rule_ids("import random\n", "workloads/gups.py") == []


class TestTelemetryHotPathRPR003:
    def test_fires_on_lookup_in_loop(self):
        src = (
            "while running:\n"
            "    tel.counter('dram.reads').inc()\n"
        )
        assert rule_ids(src, "dram/ctl.py") == ["RPR003"]

    def test_fires_on_active_in_for_loop(self):
        src = (
            "for request in requests:\n"
            "    tel = telemetry.active()\n"
        )
        assert rule_ids(src, "core/sim.py") == ["RPR003"]

    def test_silent_on_constructor_binding(self):
        src = (
            "tel = telemetry.active()\n"
            "counter = tel.counter('dram.reads')\n"
            "for request in requests:\n"
            "    counter.inc()\n"
        )
        assert rule_ids(src, "dram/ctl.py") == []

    def test_silent_inside_telemetry_package(self):
        src = (
            "for name in names:\n"
            "    registry.counter(name)\n"
        )
        assert rule_ids(src, "telemetry/exporters.py") == []


class TestRegistryHygieneRPR004:
    def test_fires_on_unregistered_figure_module(self):
        src = "def run(scale=1.0):\n    return None\n"
        assert rule_ids(src, "experiments/fig99.py") == ["RPR004"]

    def test_fires_on_computed_id(self):
        src = (
            "@register('fig' + str(99))\n"
            "def run(scale=1.0):\n    return None\n"
        )
        assert "RPR004" in rule_ids(src, "experiments/fig99.py")

    def test_fires_on_missing_scale_and_defaults(self):
        src = (
            "@register('fig99')\n"
            "def run(platforms):\n    return None\n"
        )
        found = check_source(src, filename="experiments/fig99.py")
        messages = " ".join(f.message for f in found)
        assert "does not accept 'scale'" in messages
        assert "no default" in messages

    def test_fires_on_duplicate_ids_across_files(self):
        src_a = "@register('fig99')\ndef run(scale=1.0):\n    return None\n"
        # duplicate inside one run of the engine: same module twice
        src_b = src_a + "\n@register('fig99')\ndef run2(scale=1.0):\n    return None\n"
        found = check_source(src_b, filename="experiments/fig99.py")
        assert any("duplicate experiment id" in f.message for f in found)

    def test_fires_on_bad_cost(self):
        src = (
            "@register('fig99', cost='free')\n"
            "def run(scale=1.0):\n    return None\n"
        )
        assert "RPR004" in rule_ids(src, "experiments/fig99.py")

    def test_silent_on_conforming_module(self):
        src = (
            "@register('fig99', title='t', tags=('x',), cost='cheap')\n"
            "def run(scale=1.0, *, platforms=None):\n"
            "    return None\n"
        )
        assert rule_ids(src, "experiments/fig99.py") == []

    def test_silent_on_non_figure_helper_module(self):
        src = "def helper():\n    return 1\n"
        assert rule_ids(src, "experiments/common.py") == []

    def test_silent_outside_experiments(self):
        src = "def run(scale=1.0):\n    return None\n"
        assert rule_ids(src, "core/fig_like.py") == []


class TestFloatEqualityRPR005:
    def test_fires_on_measured_name_equality(self):
        assert rule_ids("ok = latency_ns == previous\n") == ["RPR005"]
        assert rule_ids("ok = peak_gbps != target\n") == ["RPR005"]

    def test_fires_on_float_literal_equality(self):
        assert rule_ids("ok = ratio == 2.5\n") == ["RPR005"]

    def test_silent_on_sentinel_comparison(self):
        # values assigned, then read back exactly
        assert rule_ids("ok = duration_s == 0\n") == []
        assert rule_ids("ok = wall_time_s == -1.0\n") == []

    def test_silent_on_ordering(self):
        assert rule_ids("ok = latency_ns >= previous_ns\n") == []

    def test_silent_on_unsuffixed_names(self):
        assert rule_ids("ok = l0 == l1\n") == []


class TestEngine:
    def test_unknown_rule_is_a_check_error(self):
        with pytest.raises(CheckError):
            check_source("x = 1\n", rules=["RPR999"])

    def test_rule_selection_limits_findings(self):
        src = "import random\nx = a_ns + b_cycles\n"
        assert rule_ids(src, "core/sim.py", rules=["RPR002"]) == ["RPR002"]

    def test_syntax_error_is_a_check_error(self):
        with pytest.raises(CheckError):
            check_source("def broken(:\n")

    def test_finding_format_carries_location_rule_and_hint(self):
        finding = check_source("x = a_ns + b_cycles\n", filename="core/x.py")[0]
        text = finding.format()
        assert text.startswith("core/x.py:1:")
        assert "RPR001" in text
        assert "hint:" in text
        payload = finding.to_dict()
        assert payload["rule"] == "RPR001"
        assert payload["line"] == 1


class TestScenarioBoundaryRPR006:
    def test_fires_on_direct_construction_in_experiments(self):
        src = "model = SystemConfig(cores=4)\n"
        assert rule_ids(src, "src/repro/experiments/fig9.py", rules=["RPR006"]) == ["RPR006"]

    def test_fires_on_attribute_chain_construction(self):
        src = "bench = harness.MessBenchmark(system_config=c)\n"
        assert rule_ids(src, "src/repro/experiments/figX.py", rules=["RPR006"]) == ["RPR006"]

    def test_silent_on_classmethod_spec_constructors(self):
        src = "sweep = MessBenchmarkConfig.from_spec({'warmup_ns': 1.0})\n"
        assert rule_ids(src, "src/repro/experiments/figX.py", rules=["RPR006"]) == []

    def test_silent_outside_experiments(self):
        src = "model = CycleAccurateModel(timing, channels=6)\n"
        assert rule_ids(src, "src/repro/scenario/memory.py", rules=["RPR006"]) == []

    def test_silent_in_experiment_tests(self):
        src = "config = SystemConfig(cores=4)\n"
        assert rule_ids(src, "tests/experiments/test_x.py", rules=["RPR006"]) == []

    def test_suppression_comment_works(self):
        src = "config = SystemConfig(cores=4)  # repro: ignore[RPR006]\n"
        assert rule_ids(src, "src/repro/experiments/figX.py", rules=["RPR006"]) == []


class TestExceptionSwallowRPR007:
    def test_fires_on_bare_except(self):
        src = "try:\n    run()\nexcept:\n    pass\n"
        assert rule_ids(src, rules=["RPR007"]) == ["RPR007"]

    def test_fires_on_swallowed_broad_handler(self):
        src = "try:\n    run()\nexcept Exception:\n    pass\n"
        assert rule_ids(src, rules=["RPR007"]) == ["RPR007"]

    def test_fires_on_tuple_containing_base_exception(self):
        src = "try:\n    run()\nexcept (ValueError, BaseException):\n    x = 1\n"
        assert rule_ids(src, rules=["RPR007"]) == ["RPR007"]

    def test_fires_on_dotted_broad_name(self):
        src = "try:\n    run()\nexcept builtins.Exception:\n    flag = True\n"
        assert rule_ids(src, rules=["RPR007"]) == ["RPR007"]

    def test_silent_when_handler_reraises(self):
        src = (
            "try:\n    run()\nexcept Exception as exc:\n"
            "    raise CacheError(str(exc)) from exc\n"
        )
        assert rule_ids(src, rules=["RPR007"]) == []

    def test_silent_when_handler_calls_something(self):
        # Classifying, logging or recording the failure all show up as a
        # call in the handler body.
        src = (
            "try:\n    run()\nexcept Exception as exc:\n"
            "    kind = classify_failure(exc)\n"
        )
        assert rule_ids(src, rules=["RPR007"]) == []

    def test_silent_when_handler_returns_fallback(self):
        src = "try:\n    run()\nexcept Exception:\n    return default\n"
        wrapped = "def f():\n" + "\n".join(
            "    " + line for line in src.splitlines()
        ) + "\n"
        assert rule_ids(wrapped, rules=["RPR007"]) == []

    def test_call_nested_in_conditional_counts_as_acting(self):
        src = (
            "try:\n    run()\nexcept Exception as exc:\n"
            "    if verbose:\n        log(exc)\n"
        )
        assert rule_ids(src, rules=["RPR007"]) == []

    def test_call_only_inside_nested_def_does_not_count(self):
        # Code merely *defined* in the handler never runs there.
        src = (
            "try:\n    run()\nexcept Exception:\n"
            "    def later():\n        log('x')\n"
        )
        assert rule_ids(src, rules=["RPR007"]) == ["RPR007"]

    def test_silent_on_narrow_handler(self):
        src = "try:\n    run()\nexcept OSError:\n    pass\n"
        assert rule_ids(src, rules=["RPR007"]) == []

    def test_suppression_on_the_except_line(self):
        src = (
            "try:\n    run()\n"
            "except Exception:  # repro: ignore[RPR007]\n    pass\n"
        )
        assert rule_ids(src, rules=["RPR007"]) == []


class TestEngineSeamRPR008:
    def test_fires_on_simulator_construction_in_experiments(self):
        src = "sim = MessMemorySimulator(curves)\n"
        assert rule_ids(src, "src/repro/experiments/figX.py", rules=["RPR008"]) == ["RPR008"]

    def test_fires_on_dotted_controller_construction(self):
        src = "ctrl = controller.DramController(timing, channels=6)\n"
        assert rule_ids(src, "src/repro/experiments/figX.py", rules=["RPR008"]) == ["RPR008"]

    def test_fires_on_engine_and_core_construction(self):
        src = "engine = Engine()\ncore = Core(0)\n"
        assert rule_ids(src, "src/repro/experiments/figX.py", rules=["RPR008"]) == ["RPR008", "RPR008"]

    def test_silent_on_seam_routed_construction(self):
        src = (
            "sim = build_memory('mess', {'curves': skylake})\n"
            "drive_fixed_rate(sim, 1.0, 1000)\n"
            "replay = frfcfs_replay(DDR4_2666, 6, trace)\n"
        )
        assert rule_ids(src, "src/repro/experiments/figX.py", rules=["RPR008"]) == []

    def test_silent_on_class_passed_as_probe_factory(self):
        # a class reference is not a call: characterize_model builds it
        src = "fam = characterize_model(OptaneModel, config, name='x')\n"
        assert rule_ids(src, "src/repro/experiments/figX.py", rules=["RPR008"]) == []

    def test_silent_outside_experiments(self):
        src = "sim = MessMemorySimulator(curves)\n"
        assert rule_ids(src, "src/repro/engine/mess.py", rules=["RPR008"]) == []

    def test_silent_in_experiment_tests(self):
        src = "sim = MessMemorySimulator(curves)\n"
        assert rule_ids(src, "tests/experiments/test_x.py", rules=["RPR008"]) == []

    def test_suppression_comment_works(self):
        src = "sim = MessMemorySimulator(curves)  # repro: ignore[RPR008]\n"
        assert rule_ids(src, "src/repro/experiments/figX.py", rules=["RPR008"]) == []


class TestBlockingAsyncIORPR009:
    FILE = "src/repro/serve/http.py"

    def test_fires_on_time_sleep(self):
        src = "async def handle():\n    time.sleep(1)\n"
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == ["RPR009"]

    def test_fires_on_open(self):
        src = "async def handle():\n    data = open('x').read()\n"
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == ["RPR009"]

    def test_fires_on_path_write(self):
        src = "async def handle(path):\n    path.write_text('x')\n"
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == ["RPR009"]

    def test_fires_on_sqlite_work(self):
        src = (
            "async def handle(conn):\n"
            "    conn.execute('select 1')\n"
            "    conn.commit()\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == [
            "RPR009",
            "RPR009",
        ]

    def test_fires_on_os_replace(self):
        src = "async def handle():\n    os.replace('a', 'b')\n"
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == ["RPR009"]

    def test_silent_on_asyncio_sleep(self):
        src = "async def handle():\n    await asyncio.sleep(1)\n"
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == []

    def test_silent_in_sync_function(self):
        src = "def compute(path):\n    return path.read_text()\n"
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == []

    def test_silent_in_nested_sync_function(self):
        # the nested def is the executor payload — defining it is fine
        src = (
            "async def handle(loop, path):\n"
            "    def payload():\n"
            "        return path.read_text()\n"
            "    return await loop.run_in_executor(None, payload)\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == []

    def test_silent_on_lambda_payload(self):
        src = (
            "async def handle(loop, path):\n"
            "    return await loop.run_in_executor("
            "None, lambda: path.read_text())\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == []

    def test_fires_in_nested_async_function(self):
        src = (
            "async def outer():\n"
            "    async def inner():\n"
            "        time.sleep(1)\n"
            "    await inner()\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == ["RPR009"]

    def test_silent_outside_serve(self):
        src = "async def handle():\n    time.sleep(1)\n"
        assert rule_ids(src, "src/repro/runner/pool.py", rules=["RPR009"]) == []

    def test_suppression_comment_works(self):
        src = (
            "async def handle():\n"
            "    time.sleep(1)  # repro: ignore[RPR009]\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR009"]) == []


class TestUnclassifiedShardFailureRPR013:
    FILE = "src/repro/serve/cluster.py"

    def test_fires_on_bare_except(self):
        src = (
            "async def call(shard):\n"
            "    try:\n"
            "        return await shard.request()\n"
            "    except:\n"
            "        return None\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR013"]) == ["RPR013"]

    def test_fires_on_swallowed_broad_except(self):
        src = (
            "async def call(shard):\n"
            "    try:\n"
            "        return await shard.request()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR013"]) == ["RPR013"]

    def test_fires_on_broad_member_of_a_tuple(self):
        src = (
            "async def call(shard):\n"
            "    try:\n"
            "        return await shard.request()\n"
            "    except (ValueError, Exception):\n"
            "        return None\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR013"]) == ["RPR013"]

    def test_silent_when_handler_reraises(self):
        src = (
            "async def call(shard):\n"
            "    try:\n"
            "        return await shard.request()\n"
            "    except Exception as exc:\n"
            "        raise ShardUnavailableError(str(exc)) from exc\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR013"]) == []

    def test_silent_when_handler_classifies(self):
        src = (
            "async def call(shard):\n"
            "    try:\n"
            "        return await shard.request()\n"
            "    except Exception as exc:\n"
            "        record(classify_failure(exc))\n"
            "        return None\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR013"]) == []

    def test_silent_on_typed_peer_failure_set(self):
        src = (
            "async def call(shard):\n"
            "    try:\n"
            "        return await shard.request()\n"
            "    except (ConnectionError, OSError):\n"
            "        return None\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR013"]) == []

    def test_scoped_to_the_fabric_modules(self):
        src = (
            "def work():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert rule_ids(src, "src/repro/serve/service.py", rules=["RPR013"]) == []
        assert rule_ids(src, "src/repro/runner/pool.py", rules=["RPR013"]) == []
        assert rule_ids(
            src, "src/repro/serve/health.py", rules=["RPR013"]
        ) == ["RPR013"]

    def test_suppression_comment_works(self):
        src = (
            "async def call(shard):\n"
            "    try:\n"
            "        return await shard.request()\n"
            "    except Exception:  # repro: ignore[RPR013]\n"
            "        return None\n"
        )
        assert rule_ids(src, self.FILE, rules=["RPR013"]) == []
