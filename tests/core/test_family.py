"""Unit tests for CurveFamily."""

from __future__ import annotations

import pytest

from repro.core.curve import BandwidthLatencyCurve
from repro.core.family import CurveFamily
from repro.errors import CurveError


def make_family(**kwargs):
    curves = [
        BandwidthLatencyCurve(0.5, [1, 40, 80], [100, 130, 300]),
        BandwidthLatencyCurve(1.0, [1, 60, 110], [90, 110, 250]),
    ]
    return CurveFamily(curves, **kwargs)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(CurveError, match="at least one"):
            CurveFamily([])

    def test_duplicate_ratios_rejected(self):
        curve = BandwidthLatencyCurve(1.0, [1], [10])
        with pytest.raises(CurveError, match="duplicate"):
            CurveFamily([curve, curve])

    def test_invalid_theoretical_bw_rejected(self):
        curve = BandwidthLatencyCurve(1.0, [1], [10])
        with pytest.raises(CurveError):
            CurveFamily([curve], theoretical_bandwidth_gbps=-1)

    def test_curves_sorted_by_ratio(self):
        family = make_family()
        assert family.read_ratios == [0.5, 1.0]


class TestContainer:
    def test_len_iter_contains(self):
        family = make_family()
        assert len(family) == 2
        assert 0.5 in family
        assert 0.7 not in family
        assert {c.read_ratio for c in family} == {0.5, 1.0}

    def test_getitem(self):
        family = make_family()
        assert family[1.0].read_ratio == 1.0
        with pytest.raises(CurveError, match="no curve"):
            family[0.7]


class TestLookup:
    def test_nearest(self):
        family = make_family()
        assert family.nearest(0.6).read_ratio == 0.5
        assert family.nearest(0.9).read_ratio == 1.0

    def test_nearest_invalid_ratio(self):
        with pytest.raises(CurveError):
            make_family().nearest(1.5)

    def test_latency_interpolates_between_curves(self):
        family = make_family()
        at_half = family.latency_at(40, 0.5)
        at_one = family.latency_at(40, 1.0)
        mid = family.latency_at(40, 0.75)
        assert min(at_half, at_one) <= mid <= max(at_half, at_one)
        assert mid == pytest.approx((at_half + at_one) / 2, rel=1e-6)

    def test_latency_clamps_outside_ratio_range(self):
        family = make_family()
        assert family.latency_at(40, 0.0) == family.latency_at(40, 0.5)

    def test_nearest_mode(self):
        family = make_family()
        assert family.latency_at(40, 0.7, interpolate=False) == family.latency_at(
            40, 0.5
        )

    def test_max_bandwidth_at_interpolates(self):
        family = make_family()
        assert family.max_bandwidth_at(0.75) == pytest.approx(95.0)

    def test_aggregate_properties(self):
        family = make_family()
        assert family.unloaded_latency_ns == 90
        assert family.max_bandwidth_gbps == 110


class TestScaling:
    def test_scaled_bandwidth(self):
        family = make_family(theoretical_bandwidth_gbps=128.0)
        scaled = family.scaled_bandwidth(0.5)
        assert scaled.max_bandwidth_gbps == pytest.approx(55.0)
        assert scaled.theoretical_bandwidth_gbps == pytest.approx(64.0)
        # latencies untouched
        assert scaled.unloaded_latency_ns == family.unloaded_latency_ns

    def test_invalid_factor(self):
        with pytest.raises(CurveError):
            make_family().scaled_bandwidth(0)


class TestSerialization:
    def test_csv_roundtrip(self, tmp_path):
        family = make_family(name="rt", theoretical_bandwidth_gbps=128.0)
        path = tmp_path / "curves.csv"
        family.to_csv(path)
        loaded = CurveFamily.from_csv(
            path, name="rt", theoretical_bandwidth_gbps=128.0
        )
        assert loaded.read_ratios == family.read_ratios
        for ratio in family.read_ratios:
            assert loaded[ratio].latency_ns.tolist() == family[
                ratio
            ].latency_ns.tolist()

    def test_csv_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(CurveError, match="missing columns"):
            CurveFamily.from_csv(path)

    def test_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("read_ratio,bandwidth_gbps,latency_ns\n")
        with pytest.raises(CurveError, match="no data"):
            CurveFamily.from_csv(path)

    def test_json_roundtrip(self, tmp_path):
        family = make_family(name="json-rt", theoretical_bandwidth_gbps=64.0)
        path = tmp_path / "family.json"
        family.to_json(path)
        loaded = CurveFamily.from_json(path)
        assert loaded.name == "json-rt"
        assert loaded.theoretical_bandwidth_gbps == 64.0
        assert loaded.read_ratios == family.read_ratios

    def test_malformed_dict(self):
        with pytest.raises(CurveError, match="malformed"):
            CurveFamily.from_dict({"curves": [{"bogus": 1}]})
