"""Unit tests for BandwidthLatencyCurve."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.curve import BandwidthLatencyCurve
from repro.errors import CurveError


class TestConstruction:
    def test_valid_curve(self, simple_curve):
        assert len(simple_curve) == 8
        assert simple_curve.read_ratio == 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CurveError, match="lengths differ"):
            BandwidthLatencyCurve(1.0, [1, 2], [10])

    def test_empty_rejected(self):
        with pytest.raises(CurveError):
            BandwidthLatencyCurve(1.0, [], [])

    @pytest.mark.parametrize("ratio", [-0.1, 1.5])
    def test_out_of_range_ratio_rejected(self, ratio):
        with pytest.raises(CurveError, match="read_ratio"):
            BandwidthLatencyCurve(ratio, [1.0], [10.0])

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(CurveError, match="non-negative"):
            BandwidthLatencyCurve(1.0, [-1.0], [10.0])

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(CurveError, match="positive"):
            BandwidthLatencyCurve(1.0, [1.0], [0.0])

    def test_nan_rejected(self):
        with pytest.raises(CurveError, match="non-finite"):
            BandwidthLatencyCurve(1.0, [float("nan")], [10.0])

    def test_from_points(self):
        curve = BandwidthLatencyCurve.from_points(0.8, [(1, 100), (50, 200)])
        assert curve.max_bandwidth_gbps == 50
        assert curve.unloaded_latency_ns == 100

    def test_from_points_empty_rejected(self):
        with pytest.raises(CurveError):
            BandwidthLatencyCurve.from_points(0.8, [])


class TestBasicProperties:
    def test_unloaded_latency_is_at_lowest_bandwidth(self, simple_curve):
        assert simple_curve.unloaded_latency_ns == 90

    def test_max_latency(self, simple_curve):
        assert simple_curve.max_latency_ns == 400

    def test_max_bandwidth(self, waveform_curve):
        # the peak, not the last point
        assert waveform_curve.max_bandwidth_gbps == 95


class TestInterpolation:
    def test_exact_points_recovered(self, simple_curve):
        assert simple_curve.latency_at(40) == pytest.approx(95)

    def test_between_points(self, simple_curve):
        mid = simple_curve.latency_at(30)
        assert 92 < mid < 95

    def test_below_first_point_returns_unloaded(self, simple_curve):
        assert simple_curve.latency_at(0.0) == pytest.approx(90)

    def test_beyond_peak_returns_max_latency(self, simple_curve):
        assert simple_curve.latency_at(500) == simple_curve.max_latency_ns

    def test_waveform_beyond_peak_uses_global_max(self, waveform_curve):
        # past the peak the conservative plateau is the global maximum
        # latency, which lives on the declining tail
        assert waveform_curve.latency_at(96) == 430

    def test_negative_bandwidth_rejected(self, simple_curve):
        with pytest.raises(CurveError):
            simple_curve.latency_at(-1)

    def test_monotone_on_ascending_section(self, simple_curve):
        grid = np.linspace(0, simple_curve.max_bandwidth_gbps, 50)
        lats = [simple_curve.latency_at(float(b)) for b in grid]
        assert all(b >= a - 1e-9 for a, b in zip(lats, lats[1:]))


class TestInclination:
    def test_flat_region_small_slope(self, simple_curve):
        assert simple_curve.inclination_at(10) < 0.5

    def test_steep_region_large_slope(self, simple_curve):
        assert simple_curve.inclination_at(104) > 5.0

    def test_invalid_delta_rejected(self, simple_curve):
        with pytest.raises(CurveError):
            simple_curve.inclination_at(10, delta_gbps=0)


class TestSaturation:
    def test_doubling_point(self, simple_curve):
        onset = simple_curve.saturation_bandwidth_gbps()
        # latency doubles (180 ns) between 80 (115) and 95 (150)... and
        # 105 (240): onset must sit in that bracket
        assert 95 < onset < 105
        assert simple_curve.latency_at(onset) == pytest.approx(180, rel=0.05)

    def test_never_saturating_curve_returns_peak(self):
        curve = BandwidthLatencyCurve(1.0, [1, 50, 100], [90, 95, 100])
        assert curve.saturation_bandwidth_gbps() == 100

    def test_invalid_factor_rejected(self, simple_curve):
        with pytest.raises(CurveError):
            simple_curve.saturation_bandwidth_gbps(factor=1.0)


class TestWaveform:
    def test_monotone_curve_has_no_waveform(self, simple_curve):
        assert not simple_curve.has_waveform()
        assert simple_curve.waveform_points() == 0

    def test_waveform_detected(self, waveform_curve):
        assert waveform_curve.has_waveform()
        assert waveform_curve.waveform_points() == 3

    def test_tolerance_suppresses_noise(self):
        curve = BandwidthLatencyCurve(
            1.0, [1, 50, 100, 99.8], [90, 100, 200, 210]
        )
        assert not curve.has_waveform(tolerance_gbps=0.5)


class TestSerialization:
    def test_to_rows(self, simple_curve):
        rows = simple_curve.to_rows()
        assert len(rows) == len(simple_curve)
        assert rows[0] == (1.0, 1.0, 90.0)
