"""Unit tests for the Mess analytical memory simulator."""

from __future__ import annotations

import pytest

from repro.core.simulator import MessMemorySimulator
from repro.errors import ConfigurationError
from repro.request import AccessType, MemoryRequest


def drive(simulator, gap_ns, ops, read_every=1):
    """Open-loop fixed-rate request stream; returns last latency."""
    now = 0.0
    latency = 0.0
    for index in range(ops):
        access = (
            AccessType.READ if index % read_every == 0 else AccessType.WRITE
        )
        latency = simulator.access(
            MemoryRequest((index % 4096) * 64, access, now)
        )
        now += gap_ns
    return latency


class TestConfiguration:
    def test_invalid_window(self, small_family):
        with pytest.raises(ConfigurationError):
            MessMemorySimulator(small_family, window_ops=0)

    def test_invalid_overhead(self, small_family):
        with pytest.raises(ConfigurationError):
            MessMemorySimulator(small_family, cpu_overhead_ns=-1)

    def test_invalid_min_latency(self, small_family):
        with pytest.raises(ConfigurationError):
            MessMemorySimulator(small_family, min_latency_ns=0)

    def test_name(self, small_family):
        assert MessMemorySimulator(small_family).name == "mess"


class TestFeedbackLoop:
    def test_starts_at_unloaded_latency(self, small_family):
        simulator = MessMemorySimulator(small_family)
        assert simulator.current_latency_ns == pytest.approx(
            small_family.latency_at(0.0, 1.0)
        )

    def test_converges_to_offered_bandwidth(self, small_family):
        simulator = MessMemorySimulator(
            small_family, window_ops=200, keep_history=True
        )
        drive(simulator, gap_ns=1.0, ops=8000)  # offered: 64 GB/s
        final = simulator.history[-1]
        assert final.mess_bandwidth_gbps == pytest.approx(64.0, rel=0.1)

    def test_latency_follows_curve_at_position(self, small_family):
        simulator = MessMemorySimulator(small_family, window_ops=200)
        drive(simulator, gap_ns=1.0, ops=8000)
        expected = small_family.latency_at(64.0, 1.0)
        assert simulator.current_latency_ns == pytest.approx(expected, rel=0.15)

    def test_cpu_overhead_subtracted(self, small_family):
        plain = MessMemorySimulator(small_family, window_ops=200)
        adjusted = MessMemorySimulator(
            small_family, window_ops=200, cpu_overhead_ns=50.0
        )
        drive(plain, 2.0, 3000)
        drive(adjusted, 2.0, 3000)
        assert plain.current_latency_ns - adjusted.current_latency_ns == (
            pytest.approx(50.0, abs=1.0)
        )

    def test_min_latency_floor(self, small_family):
        simulator = MessMemorySimulator(
            small_family, cpu_overhead_ns=10_000.0, min_latency_ns=3.0
        )
        drive(simulator, 5.0, 1500)
        assert simulator.current_latency_ns >= 3.0

    def test_ratio_selects_curve(self, small_family):
        # 50/50 traffic must read latency from the write-heavy curve
        read_only = MessMemorySimulator(small_family, window_ops=200)
        mixed = MessMemorySimulator(small_family, window_ops=200)
        drive(read_only, gap_ns=1.5, ops=6000)
        drive(mixed, gap_ns=1.5, ops=6000, read_every=2)
        assert mixed.current_latency_ns > read_only.current_latency_ns

    def test_capacity_pipe_bounds_bandwidth(self, small_family):
        # demand far beyond the curve peak: completions must not imply
        # more bandwidth than the family's maximum
        simulator = MessMemorySimulator(small_family, window_ops=200)
        now = 0.0
        last_completion = 0.0
        ops = 20000
        for index in range(ops):
            latency = simulator.access(
                MemoryRequest((index % 4096) * 64, AccessType.READ, now)
            )
            last_completion = max(last_completion, now + latency)
            now += 0.1  # offered 640 GB/s
        achieved = ops * 64 / last_completion
        assert achieved <= small_family.max_bandwidth_gbps * 1.1

    def test_window_record_telemetry(self, small_family):
        simulator = MessMemorySimulator(
            small_family, window_ops=100, keep_history=True
        )
        drive(simulator, 1.0, 1000)
        assert len(simulator.history) == 10
        first = simulator.history[0]
        assert first.index == 0
        assert first.read_ratio == 1.0
        assert first.end_ns > first.start_ns

    def test_notify_window_forces_iteration(self, small_family):
        simulator = MessMemorySimulator(
            small_family, window_ops=10_000, keep_history=True
        )
        drive(simulator, 1.0, 500)
        assert not simulator.history
        simulator.notify_window(10_000.0)
        assert len(simulator.history) == 1

    def test_reset_restores_initial_state(self, small_family):
        simulator = MessMemorySimulator(small_family, window_ops=100)
        drive(simulator, 0.5, 5000)
        assert simulator.current_position_gbps > 0
        simulator.reset()
        assert simulator.current_position_gbps == 0.0
        assert simulator.stats.accesses == 0
        assert simulator.current_latency_ns == pytest.approx(
            small_family.latency_at(0.0, 1.0)
        )

    def test_degenerate_window_does_not_crash(self, small_family):
        simulator = MessMemorySimulator(small_family, window_ops=5)
        for index in range(20):  # all at the same instant
            simulator.access(MemoryRequest(index * 64, AccessType.READ, 0.0))
        assert simulator.stats.accesses == 20
