"""Unit tests for the Table I metric derivations."""

from __future__ import annotations

import pytest

from repro.core.curve import BandwidthLatencyCurve
from repro.core.family import CurveFamily
from repro.core.metrics import compute_metrics
from repro.errors import CurveError


@pytest.fixture
def family():
    return CurveFamily(
        [
            BandwidthLatencyCurve(0.5, [1, 40, 80, 90], [100, 140, 280, 390]),
            BandwidthLatencyCurve(1.0, [1, 60, 100, 115], [90, 100, 180, 250]),
        ],
        name="metrics-test",
        theoretical_bandwidth_gbps=128.0,
    )


class TestComputeMetrics:
    def test_unloaded_is_family_minimum(self, family):
        metrics = compute_metrics(family)
        assert metrics.unloaded_latency_ns == 90

    def test_max_latency_range_spans_curves(self, family):
        metrics = compute_metrics(family)
        assert metrics.max_latency_min_ns == 250
        assert metrics.max_latency_max_ns == 390

    def test_saturated_bw_range(self, family):
        metrics = compute_metrics(family)
        # lower bound: earliest saturation onset over all curves, which
        # belongs to the write-heavy curve; upper: best peak bandwidth
        assert metrics.saturated_bw_min_gbps < 90
        assert metrics.saturated_bw_max_gbps == 115

    def test_percent_metrics(self, family):
        metrics = compute_metrics(family)
        assert metrics.saturated_bw_max_pct == pytest.approx(100 * 115 / 128)

    def test_percent_without_theoretical_raises(self):
        family = CurveFamily(
            [BandwidthLatencyCurve(1.0, [1, 50, 100], [90, 120, 300])]
        )
        metrics = compute_metrics(family)
        with pytest.raises(CurveError, match="theoretical"):
            _ = metrics.saturated_bw_min_pct

    def test_waveform_census(self, family):
        metrics = compute_metrics(family)
        assert metrics.waveform_curves == 0

    def test_waveform_counted(self):
        family = CurveFamily(
            [
                BandwidthLatencyCurve(
                    0.5, [1, 50, 90, 86, 82, 80], [100, 150, 300, 330, 360, 390]
                )
            ]
        )
        assert compute_metrics(family).waveform_curves == 1

    def test_custom_saturation_factor(self, family):
        strict = compute_metrics(family, saturation_factor=1.5)
        loose = compute_metrics(family, saturation_factor=3.0)
        assert strict.saturated_bw_min_gbps < loose.saturated_bw_min_gbps
