"""Unit tests for the PI controller."""

from __future__ import annotations

import pytest

from repro.core.controller import PIController
from repro.errors import ConfigurationError


class TestValidation:
    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_bad_convergence_factor(self, factor):
        with pytest.raises(ConfigurationError):
            PIController(convergence_factor=factor)

    def test_negative_integral_gain(self):
        with pytest.raises(ConfigurationError):
            PIController(integral_gain=-0.1)

    def test_bad_integral_limit(self):
        with pytest.raises(ConfigurationError):
            PIController(integral_limit=0)


class TestProportional:
    def test_paper_update_rule(self):
        controller = PIController(convergence_factor=0.5)
        # messBW_{i+1} = messBW_i + 0.5 * (cpuBW_i - messBW_i)
        assert controller.update(100.0, 200.0) == pytest.approx(150.0)

    def test_unit_factor_jumps_to_observation(self):
        controller = PIController(convergence_factor=1.0)
        assert controller.update(10.0, 90.0) == pytest.approx(90.0)

    def test_converges_to_constant_observation(self):
        controller = PIController(convergence_factor=0.3)
        estimate = 0.0
        for _ in range(60):
            estimate = controller.update(estimate, 80.0)
        assert estimate == pytest.approx(80.0, rel=1e-3)

    def test_no_overshoot_without_integral(self):
        controller = PIController(convergence_factor=0.5)
        estimate = 0.0
        for _ in range(30):
            estimate = controller.update(estimate, 50.0)
            assert estimate <= 50.0 + 1e-9


class TestIntegral:
    def test_integral_accelerates_convergence(self):
        plain = PIController(convergence_factor=0.1)
        with_i = PIController(convergence_factor=0.1, integral_gain=0.05)
        a = b = 0.0
        for _ in range(5):
            a = plain.update(a, 100.0)
            b = with_i.update(b, 100.0)
        assert b > a

    def test_windup_clamped(self):
        controller = PIController(
            convergence_factor=0.1, integral_gain=1.0, integral_limit=10.0
        )
        estimate = 0.0
        for _ in range(100):
            estimate = controller.update(0.0, 1000.0)
        # integral contribution bounded by gain * limit
        assert estimate <= 0.1 * 1000.0 + 1.0 * 10.0 + 1e-9

    def test_reset_clears_integral(self):
        controller = PIController(convergence_factor=0.5, integral_gain=0.5)
        controller.update(0.0, 100.0)
        controller.reset()
        # after reset, behaves like a fresh proportional+first-step update
        fresh = PIController(convergence_factor=0.5, integral_gain=0.5)
        assert controller.update(0.0, 40.0) == fresh.update(0.0, 40.0)
