"""Unit tests for the PI controller."""

from __future__ import annotations

import pytest

from repro.core.controller import PIController
from repro.errors import ConfigurationError


class TestValidation:
    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_bad_convergence_factor(self, factor):
        with pytest.raises(ConfigurationError):
            PIController(convergence_factor=factor)

    def test_negative_integral_gain(self):
        with pytest.raises(ConfigurationError):
            PIController(integral_gain=-0.1)

    def test_bad_integral_limit(self):
        with pytest.raises(ConfigurationError):
            PIController(integral_limit=0)


class TestProportional:
    def test_paper_update_rule(self):
        controller = PIController(convergence_factor=0.5)
        # messBW_{i+1} = messBW_i + 0.5 * (cpuBW_i - messBW_i)
        assert controller.update(100.0, 200.0) == pytest.approx(150.0)

    def test_unit_factor_jumps_to_observation(self):
        controller = PIController(convergence_factor=1.0)
        assert controller.update(10.0, 90.0) == pytest.approx(90.0)

    def test_converges_to_constant_observation(self):
        controller = PIController(convergence_factor=0.3)
        estimate = 0.0
        for _ in range(60):
            estimate = controller.update(estimate, 80.0)
        assert estimate == pytest.approx(80.0, rel=1e-3)

    def test_no_overshoot_without_integral(self):
        controller = PIController(convergence_factor=0.5)
        estimate = 0.0
        for _ in range(30):
            estimate = controller.update(estimate, 50.0)
            assert estimate <= 50.0 + 1e-9


class TestIntegral:
    def test_integral_accelerates_convergence(self):
        plain = PIController(convergence_factor=0.1)
        with_i = PIController(convergence_factor=0.1, integral_gain=0.05)
        a = b = 0.0
        for _ in range(5):
            a = plain.update(a, 100.0)
            b = with_i.update(b, 100.0)
        assert b > a

    def test_windup_clamped(self):
        controller = PIController(
            convergence_factor=0.1, integral_gain=1.0, integral_limit=10.0
        )
        estimate = 0.0
        for _ in range(100):
            estimate = controller.update(0.0, 1000.0)
        # integral contribution bounded by gain * limit
        assert estimate <= 0.1 * 1000.0 + 1.0 * 10.0 + 1e-9

    def test_reset_clears_integral(self):
        controller = PIController(convergence_factor=0.5, integral_gain=0.5)
        controller.update(0.0, 100.0)
        controller.reset()
        # after reset, behaves like a fresh proportional+first-step update
        fresh = PIController(convergence_factor=0.5, integral_gain=0.5)
        assert controller.update(0.0, 40.0) == fresh.update(0.0, 40.0)


class TestAntiWindup:
    def test_clamp_engages_and_pins_the_accumulator(self):
        controller = PIController(
            convergence_factor=0.1, integral_gain=0.0, integral_limit=25.0
        )
        assert not controller.integral_saturated
        controller.update(0.0, 10.0)
        assert controller.integral == pytest.approx(10.0)
        assert not controller.integral_saturated
        # persistent error walks the accumulator into the clamp
        for _ in range(10):
            controller.update(0.0, 10.0)
        assert controller.integral == pytest.approx(25.0)
        assert controller.integral_saturated
        # further same-sign error cannot push past the limit
        controller.update(0.0, 1000.0)
        assert controller.integral == pytest.approx(25.0)

    def test_clamp_is_symmetric(self):
        controller = PIController(integral_limit=5.0)
        for _ in range(10):
            controller.update(10.0, 0.0)
        assert controller.integral == pytest.approx(-5.0)
        assert controller.integral_saturated

    def test_saturated_integral_recovers_after_error_flips(self):
        controller = PIController(
            convergence_factor=0.5, integral_gain=0.01, integral_limit=15.0
        )
        for _ in range(10):
            controller.update(0.0, 10.0)
        assert controller.integral_saturated
        # opposite-sign error drains the accumulator immediately — the
        # whole point of anti-windup
        controller.update(10.0, 0.0)
        assert not controller.integral_saturated
        assert controller.integral == pytest.approx(5.0)


class TestOneStepConvergence:
    def test_unit_factor_converges_in_exactly_one_window(self):
        controller = PIController(convergence_factor=1.0)
        estimate = controller.update(12.5, 87.5)
        assert estimate == pytest.approx(87.5)
        # subsequent windows are already at the setpoint: zero error
        estimate = controller.update(estimate, 87.5)
        assert estimate == pytest.approx(87.5)
        assert controller.last_error == pytest.approx(0.0)

    def test_unit_factor_tracks_a_step_change_in_one_window(self):
        controller = PIController(convergence_factor=1.0)
        estimate = controller.update(0.0, 40.0)
        estimate = controller.update(estimate, 90.0)
        assert estimate == pytest.approx(90.0)


class TestPaperEquivalence:
    def test_disabled_integral_matches_paper_rule_over_a_trajectory(self):
        controller = PIController(convergence_factor=0.35, integral_gain=0.0)
        observations = [100.0, 80.0, 120.0, 120.0, 60.0, 95.0, 95.0]
        estimate = 10.0
        expected = 10.0
        for observed in observations:
            estimate = controller.update(estimate, observed)
            # messBW_{i+1} = messBW_i + convFactor * (cpuBW_i - messBW_i)
            expected = expected + 0.35 * (observed - expected)
            assert estimate == pytest.approx(expected)

    def test_disabled_integral_ignores_accumulated_error(self):
        # the accumulator still fills, but with zero gain it must never
        # leak into the estimate
        controller = PIController(convergence_factor=0.5, integral_gain=0.0)
        for _ in range(50):
            controller.update(0.0, 100.0)
        assert controller.integral != 0.0
        assert controller.update(100.0, 100.0) == pytest.approx(100.0)


class TestIntrospection:
    def test_updates_and_last_error_track_the_loop(self):
        controller = PIController(convergence_factor=0.5)
        assert controller.updates == 0
        controller.update(10.0, 30.0)
        controller.update(20.0, 15.0)
        assert controller.updates == 2
        assert controller.last_error == pytest.approx(-5.0)
        controller.reset()
        assert controller.updates == 0
        assert controller.last_error == 0.0
