"""Unit tests for CurveBuilder post-processing."""

from __future__ import annotations

import pytest

from repro.core.builder import CurveBuilder, _mad_mask, _median_smooth
from repro.errors import BenchmarkError

import numpy as np


class TestValidation:
    def test_invalid_threshold(self):
        with pytest.raises(BenchmarkError):
            CurveBuilder(outlier_mad_threshold=0)

    def test_even_smooth_window(self):
        with pytest.raises(BenchmarkError):
            CurveBuilder(smooth_window=2)

    def test_invalid_measurement(self):
        builder = CurveBuilder()
        with pytest.raises(BenchmarkError):
            builder.add(1.0, 0, bandwidth_gbps=-1, latency_ns=10)
        with pytest.raises(BenchmarkError):
            builder.add(1.0, 0, bandwidth_gbps=1, latency_ns=0)

    def test_build_empty(self):
        with pytest.raises(BenchmarkError, match="no measurements"):
            CurveBuilder().build()


class TestAssembly:
    def test_points_grouped_by_ratio_and_ordered_by_pressure(self):
        builder = CurveBuilder(smooth_window=1)
        # insert out of order; pressure -nops so higher nop = lower
        for ratio in (1.0, 0.5):
            builder.add(ratio, pressure=-100, bandwidth_gbps=10, latency_ns=100)
            builder.add(ratio, pressure=0, bandwidth_gbps=90, latency_ns=200)
            builder.add(ratio, pressure=-10, bandwidth_gbps=50, latency_ns=120)
        family = builder.build()
        assert family.read_ratios == [0.5, 1.0]
        curve = family[1.0]
        assert curve.bandwidth_gbps.tolist() == [10, 50, 90]
        assert curve.latency_ns.tolist() == [100, 120, 200]

    def test_repetitions_averaged(self):
        builder = CurveBuilder(smooth_window=1)
        builder.add(1.0, 0, 10.0, 100.0)
        builder.add(1.0, 0, 12.0, 104.0)
        family = builder.build()
        assert family[1.0].bandwidth_gbps[0] == pytest.approx(11.0)
        assert family[1.0].latency_ns[0] == pytest.approx(102.0)

    def test_outlier_dropped(self):
        builder = CurveBuilder(smooth_window=1)
        for latency in (100, 101, 99, 100, 102, 5000):  # one wild outlier
            builder.add(1.0, 0, 10.0, latency)
        family = builder.build()
        assert family[1.0].latency_ns[0] == pytest.approx(100.4, abs=0.5)

    def test_metadata_forwarded(self):
        builder = CurveBuilder(name="plat", theoretical_bandwidth_gbps=42.0)
        builder.add(1.0, 0, 10, 100)
        family = builder.build()
        assert family.name == "plat"
        assert family.theoretical_bandwidth_gbps == 42.0

    def test_len_counts_raw_points(self):
        builder = CurveBuilder()
        builder.add(1.0, 0, 10, 100)
        builder.add(1.0, 0, 10, 100)
        assert len(builder) == 2


class TestMadMask:
    def test_small_samples_all_kept(self):
        assert _mad_mask(np.array([1.0, 100.0]), 3.5).all()

    def test_degenerate_mad_all_kept(self):
        assert _mad_mask(np.array([5.0, 5.0, 5.0, 50.0 * 0 + 5.0]), 3.5).all()

    def test_outlier_masked(self):
        mask = _mad_mask(np.array([10.0, 11.0, 9.0, 10.0, 500.0]), 3.5)
        assert mask.tolist() == [True, True, True, True, False]


class TestMedianSmooth:
    def test_window_one_is_identity(self):
        values = np.array([1.0, 9.0, 2.0])
        assert _median_smooth(values, 1).tolist() == values.tolist()

    def test_spike_removed(self):
        values = np.array([1.0, 1.0, 50.0, 1.0, 1.0])
        assert _median_smooth(values, 3).tolist() == [1.0, 1.0, 1.0, 1.0, 1.0]

    def test_endpoints_preserved(self):
        # symmetric shrinking windows: endpoints are their own median
        values = np.array([10.0, 20.0, 30.0, 40.0, 100.0])
        smoothed = _median_smooth(values, 3)
        assert smoothed[0] == 10.0
        assert smoothed[-1] == 100.0
