"""Property-based tests (hypothesis) on the core data structures."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.builder import CurveBuilder
from repro.core.controller import PIController
from repro.core.curve import BandwidthLatencyCurve
from repro.core.family import CurveFamily
from repro.core.stress import default_scorer


@st.composite
def curves(draw):
    """Random valid curves: positive latencies, non-negative bandwidths."""
    n = draw(st.integers(min_value=2, max_value=24))
    bandwidths = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    latencies = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=5000.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    ratio = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    return BandwidthLatencyCurve(ratio, bandwidths, latencies)


@st.composite
def monotone_curves(draw):
    """Curves where both coordinates increase along the pressure axis."""
    n = draw(st.integers(min_value=3, max_value=16))
    bw_steps = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    lat_steps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    bandwidths = np.cumsum(bw_steps)
    latencies = 50.0 + np.cumsum(lat_steps)
    return BandwidthLatencyCurve(1.0, bandwidths, latencies)


class TestCurveProperties:
    @given(curve=curves(), bandwidth=st.floats(min_value=0, max_value=4000))
    @settings(max_examples=100, deadline=None)
    def test_interpolated_latency_within_observed_range(self, curve, bandwidth):
        latency = curve.latency_at(bandwidth)
        assert curve.latency_ns.min() - 1e-9 <= latency <= curve.latency_ns.max() + 1e-9

    @given(curve=curves())
    @settings(max_examples=100, deadline=None)
    def test_saturation_onset_never_exceeds_peak(self, curve):
        assert (
            curve.saturation_bandwidth_gbps()
            <= curve.max_bandwidth_gbps + 1e-9
        )

    @given(curve=monotone_curves())
    @settings(max_examples=60, deadline=None)
    def test_interpolation_monotone_for_monotone_curves(self, curve):
        grid = np.linspace(0, curve.max_bandwidth_gbps, 30)
        latencies = [curve.latency_at(float(b)) for b in grid]
        assert all(
            later >= earlier - 1e-6
            for earlier, later in zip(latencies, latencies[1:])
        )

    @given(curve=monotone_curves())
    @settings(max_examples=60, deadline=None)
    def test_monotone_curves_have_no_waveform(self, curve):
        assert not curve.has_waveform()


class TestFamilyProperties:
    @given(
        curve=monotone_curves(),
        ratio=st.floats(min_value=0.0, max_value=1.0),
        bandwidth=st.floats(min_value=0.0, max_value=1000.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_interpolated_family_latency_between_member_curves(
        self, curve, ratio, bandwidth
    ):
        other = BandwidthLatencyCurve(
            0.5 if curve.read_ratio != 0.5 else 0.6,
            curve.bandwidth_gbps,
            curve.latency_ns * 1.5,
        )
        family = CurveFamily([curve, other])
        value = family.latency_at(bandwidth, ratio)
        bounds = sorted(
            (
                curve.latency_at(bandwidth),
                other.latency_at(bandwidth),
            )
        )
        assert bounds[0] - 1e-6 <= value <= bounds[1] + 1e-6

    @given(curve=monotone_curves())
    @settings(max_examples=40, deadline=None)
    def test_stress_score_always_in_unit_interval(self, curve):
        family = CurveFamily([curve])
        scorer = default_scorer(family)
        for fraction in (0.0, 0.3, 0.7, 1.0, 1.5):
            score = scorer.score(fraction * curve.max_bandwidth_gbps, 1.0)
            assert 0.0 <= score <= 1.0


class TestBuilderProperties:
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=200.0),  # bandwidth
                st.floats(min_value=1.0, max_value=1000.0),  # latency
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_builder_never_invents_out_of_range_values(self, points):
        builder = CurveBuilder(smooth_window=3)
        for pressure, (bandwidth, latency) in enumerate(points):
            builder.add(1.0, pressure, bandwidth, latency)
        family = builder.build()
        curve = family[1.0]
        bandwidths = [p[0] for p in points]
        latencies = [p[1] for p in points]
        assert curve.bandwidth_gbps.min() >= min(bandwidths) - 1e-9
        assert curve.bandwidth_gbps.max() <= max(bandwidths) + 1e-9
        assert curve.latency_ns.min() >= min(latencies) - 1e-9
        assert curve.latency_ns.max() <= max(latencies) + 1e-9


class TestControllerProperties:
    @given(
        factor=st.floats(min_value=0.05, max_value=1.0),
        target=st.floats(min_value=1.0, max_value=500.0),
        start=st.floats(min_value=0.0, max_value=500.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_proportional_controller_converges(self, factor, target, start):
        controller = PIController(convergence_factor=factor)
        estimate = start
        for _ in range(400):
            estimate = controller.update(estimate, target)
        assert abs(estimate - target) <= max(1e-6, 0.05 * target)

    @given(
        factor=st.floats(min_value=0.05, max_value=1.0),
        target=st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_error_shrinks_monotonically(self, factor, target):
        controller = PIController(convergence_factor=factor)
        estimate = 0.0
        previous_error = abs(target - estimate)
        for _ in range(20):
            estimate = controller.update(estimate, target)
            error = abs(target - estimate)
            assert error <= previous_error + 1e-9
            previous_error = error
