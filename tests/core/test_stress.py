"""Unit tests for the memory stress score (Section VI-B)."""

from __future__ import annotations

import pytest

from repro.core.stress import StressScorer, default_scorer
from repro.errors import ProfilingError


class TestScoreBounds:
    def test_unloaded_scores_near_zero(self, small_family):
        scorer = default_scorer(small_family)
        assert scorer.score(0.5, 1.0) < 0.1

    def test_saturated_scores_high(self, small_family):
        scorer = default_scorer(small_family)
        peak = small_family[1.0].max_bandwidth_gbps
        assert scorer.score(peak, 1.0) > 0.7

    def test_score_in_unit_interval(self, small_family):
        scorer = default_scorer(small_family)
        for bw in (0, 10, 50, 90, 105, 150, 500):
            for ratio in (0.5, 0.75, 1.0):
                assert 0.0 <= scorer.score(bw, ratio) <= 1.0

    def test_score_monotone_along_curve(self, small_family):
        scorer = default_scorer(small_family)
        peak = small_family[1.0].max_bandwidth_gbps
        scores = [scorer.score(f * peak, 1.0) for f in (0.1, 0.5, 0.8, 0.99)]
        assert scores == sorted(scores)

    def test_negative_bandwidth_rejected(self, small_family):
        with pytest.raises(ProfilingError):
            default_scorer(small_family).score(-1, 1.0)

    def test_beyond_peak_still_maximally_stressed(self, small_family):
        # interpolation clamps to a plateau past the peak; the stress
        # score must not relax there (the fix behind Figure 16's
        # head/tail ordering)
        scorer = default_scorer(small_family)
        peak = small_family[1.0].max_bandwidth_gbps
        assert scorer.score(1.2 * peak, 1.0) >= scorer.score(0.95 * peak, 1.0)


class TestComponents:
    def test_latency_component_normalized(self, small_family):
        scorer = default_scorer(small_family)
        assert scorer.latency_component(0.0, 1.0) == pytest.approx(0.0, abs=1e-6)
        peak = small_family[1.0].max_bandwidth_gbps
        assert scorer.latency_component(peak, 1.0) == pytest.approx(1.0)

    def test_inclination_component_bounded(self, small_family):
        scorer = default_scorer(small_family)
        for bw in (1, 50, 100, 200):
            assert 0.0 <= scorer.inclination_component(bw, 1.0) < 1.0


class TestConfiguration:
    def test_negative_weights_rejected(self, small_family):
        with pytest.raises(ProfilingError):
            StressScorer(small_family, latency_weight=-1)

    def test_zero_weights_rejected(self, small_family):
        with pytest.raises(ProfilingError):
            StressScorer(
                small_family, latency_weight=0.0, inclination_weight=0.0
            )

    def test_invalid_scale_rejected(self, small_family):
        with pytest.raises(ProfilingError):
            StressScorer(small_family, inclination_scale_ns_per_gbps=0.0)

    def test_latency_only_scorer(self, small_family):
        scorer = StressScorer(
            small_family, latency_weight=1.0, inclination_weight=0.0
        )
        peak = small_family[1.0].max_bandwidth_gbps
        assert scorer.score(peak, 1.0) == pytest.approx(
            scorer.latency_component(peak, 1.0)
        )


class TestGradient:
    def test_buckets(self, small_family):
        scorer = default_scorer(small_family)
        assert scorer.gradient_color(0.1) == "green"
        assert scorer.gradient_color(0.5) == "yellow"
        assert scorer.gradient_color(0.9) == "red"

    def test_out_of_range_rejected(self, small_family):
        with pytest.raises(ProfilingError):
            default_scorer(small_family).gradient_color(1.2)
