"""Integration tests: every experiment runs and shows the paper's shape.

Expensive experiments run at reduced scale; assertions target the
*qualitative* findings (orderings, crossovers, anomalies) the paper
reports, not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.base import ExperimentResult, scaled


class TestInfrastructure:
    def test_registry_complete(self):
        expected = {
            "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "fig18", "openpiton", "optane", "ablation",
            "wsweep", "thrash", "policydelta",
        }
        assert set(experiment_ids()) == expected
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_result_formatting_and_csv(self, tmp_path):
        result = ExperimentResult("x", "demo", columns=["a", "b"])
        result.add(a=1, b=2.5)
        result.note("hello")
        table = result.format_table()
        assert "demo" in table and "hello" in table
        path = tmp_path / "out.csv"
        result.to_csv(path)
        assert path.read_text().startswith("a,b")

    def test_unknown_column_rejected(self):
        result = ExperimentResult("x", "demo", columns=["a"])
        with pytest.raises(ConfigurationError):
            result.add(bogus=1)

    def test_scaled_helper(self):
        assert scaled(100, 0.5) == 50
        assert scaled(2, 0.1, minimum=1) == 1
        with pytest.raises(ConfigurationError):
            scaled(10, 0)


class TestCheapExperiments:
    def test_table1_calibration_within_one_percent(self):
        result = run_experiment("table1")
        assert len(result.rows) == 8
        assert all(row["max_abs_err_pct"] < 1.0 for row in result.rows)

    def test_fig2_emits_family_and_stream_lines(self):
        result = run_experiment("fig2")
        series = {row["series"] for row in result.rows}
        assert {"curve", "stream_min", "stream_max"} <= series

    def test_fig3_all_platforms_present(self):
        result = run_experiment("fig3")
        platforms = {row["platform"] for row in result.rows}
        assert len(platforms) == 8

    def test_optane_support(self):
        result = run_experiment("optane", scale=0.6)
        sources = {row["source"] for row in result.rows}
        assert sources == {"preset", "probed-device"}
        assert any("converges" in note for note in result.notes)

    def test_fig17_signs(self):
        result = run_experiment("fig17")
        notes = " ".join(result.notes)
        assert "lower" in notes and "higher" in notes

    def test_fig18_shape(self):
        result = run_experiment("fig18")
        assert len(result.rows) == 29
        deltas = result.column("delta_pct")
        utils = result.column("utilization_pct")
        assert utils == sorted(utils)
        assert deltas[0] < 0  # low-bandwidth: remote slower
        assert deltas[-1] > 0  # high-bandwidth: remote faster

    def test_fig15_saturated_majority(self):
        result = run_experiment("fig15")
        scores = result.column("stress_score")
        assert all(0 <= s <= 1 for s in scores)
        assert any("saturated" in note for note in result.notes)

    def test_fig16_iterations_and_stress_split(self):
        result = run_experiment("fig16")
        iterations = {row["iteration"] for row in result.rows}
        assert iterations == {0, 1}
        head = next(r for r in result.rows if r["phase"] == "spmv_head")
        tail = next(r for r in result.rows if r["phase"] == "spmv_tail")
        assert head["mean_stress"] > tail["mean_stress"]


class TestSimulatorCharacterization:
    def test_fig5_model_signatures(self):
        result = run_experiment("fig5", scale=0.6)

        def peak(system):
            return max(
                row["bandwidth_gbps"]
                for row in result.rows
                if row["system"] == system
            )

        # fixed latency and ramulator overshoot the theoretical maximum
        assert peak("fixed-latency") > 128.0
        assert peak("ramulator") > 128.0
        # internal DDR under-reports the saturated area
        assert peak("internal-ddr") < 128.0 * 0.85
        # the actual platform peaks between those extremes
        assert 0.8 * 128 < peak("actual") <= 128.0

    def test_fig4_ramulator2_wall(self):
        result = run_experiment("fig4", scale=0.6)
        wall = max(
            row["bandwidth_gbps"]
            for row in result.rows
            if row["system"] == "ramulator2"
        )
        actual = max(
            row["bandwidth_gbps"]
            for row in result.rows
            if row["system"] == "actual"
        )
        assert wall < 0.5 * actual

    def test_fig6_trace_driven_ordering(self):
        result = run_experiment("fig6", scale=0.6)

        def peak(simulator):
            return max(
                row["bandwidth_gbps"]
                for row in result.rows
                if row["simulator"] == simulator
            )

        assert peak("ramulator") > peak("actual(dram)")
        assert peak("ramulator2") < 0.6 * peak("actual(dram)")

    def test_fig7_censuses_sum_to_one(self):
        result = run_experiment("fig7", scale=0.6)
        for row in result.rows:
            total = row["hit_rate"] + row["empty_rate"] + row["miss_rate"]
            assert total == pytest.approx(1.0, abs=0.01)
        sources = {row["source"] for row in result.rows}
        assert sources == {"actual(dram)", "dramsim3", "ramulator"}


@pytest.mark.slow
class TestFullSystemExperiments:
    def test_fig10_mess_tracks_actual(self):
        result = run_experiment("fig10", scale=0.5)
        # every subfigure reports its comparison note with small
        # unloaded error
        assert len(result.notes) == 3
        for note in result.notes:
            unloaded = float(note.split("unloaded latency error ")[1].split("%")[0])
            assert unloaded < 10.0

    def test_fig11_mess_most_accurate_model(self):
        result = run_experiment("fig11", scale=0.5)
        means = {
            row["model"]: row["mean_error_pct"] for row in result.rows
        }
        reference = means.pop("cycle-accurate(dram)")
        assert reference == pytest.approx(0.0, abs=0.5)
        assert means["mess"] == min(means.values())
        assert means["fixed-latency"] > 3 * means["mess"]

    def test_fig14_openpiton_cannot_pressure_reads(self):
        result = run_experiment("fig14", scale=0.6)

        def read_peak(system):
            return max(
                row["bandwidth_gbps"]
                for row in result.rows
                if row["system"] == system and row["read_ratio"] == 1.0
            )

        assert read_peak("openpiton+mess") < read_peak("manufacturer") * 1.05

    def test_openpiton_findings(self):
        result = run_experiment("openpiton", scale=0.6)
        correct = {
            row["store_fraction"]: row
            for row in result.rows
            if row["config"] == "correct"
        }
        # posted writes raise achievable bandwidth on in-order cores
        assert correct[1.0]["bandwidth_gbps"] > correct[0.0]["bandwidth_gbps"]
        # the coherency bug inflates write traffic beyond write-allocate
        buggy = [
            row
            for row in result.rows
            if row["config"] == "coherency-bug" and row["store_fraction"] > 0
        ]
        assert any(
            row["read_ratio"] < row["expected_read_ratio"] - 0.02
            for row in buggy
        )

    def test_ablation_studies_present(self):
        result = run_experiment("ablation", scale=0.5)
        studies = {row["study"] for row in result.rows}
        assert studies == {
            "convergence_factor",
            "window_ops",
            "interpolation",
            "scheduling",
            "page_policy",
            "write_queue_depth",
        }
        # FR-FCFS must not be slower than FCFS on the same trace
        scheduling = {
            (row["setting"], row["metric"]): row["value"]
            for row in result.rows
            if row["study"] == "scheduling"
        }
        assert (
            scheduling[("frfcfs", "bandwidth_gbps")]
            >= scheduling[("fcfs", "bandwidth_gbps")] * 0.9
        )
