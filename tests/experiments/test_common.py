"""Tests for the experiments' shared fixtures (common.py)."""

from __future__ import annotations

import pytest

from repro.bench.harness import MessBenchmarkConfig
from repro.experiments.common import (
    BENCH_HIERARCHY,
    bench_sweep,
    bench_system,
    characterization,
    measured_family,
    preset_scenario,
    substrate,
)


class TestSystemConfigs:
    def test_default_bench_system(self):
        config = bench_system()
        assert config.cores == 24
        assert not config.in_order

    def test_in_order_variant(self):
        config = bench_system(cores=8, in_order=True)
        assert config.effective_mshrs == 2

    def test_hierarchy_overhead_is_cpu_side_latency(self):
        assert BENCH_HIERARCHY.total_hit_path_ns == pytest.approx(69.5)


class TestSubstrates:
    def test_skylake_substrate_configuration(self):
        spec = preset_scenario("skylake-substrate").to_spec()
        assert spec["memory"]["kind"] == "cycle-accurate"
        assert spec["memory"]["params"]["channels"] == 6
        assert spec["memory"]["params"]["timing"]["name"] == "DDR4-2666"

    def test_graviton_substrate(self):
        spec = preset_scenario("graviton-substrate").to_spec()
        assert spec["memory"]["params"]["timing"]["name"] == "DDR5-4800"

    def test_substrate_channel_count(self):
        spec = substrate("hbm-8ch", "HBM2", channels=8).to_spec()
        assert spec["memory"]["params"]["channels"] == 8

    def test_substrate_builds_a_working_model(self):
        scenario = preset_scenario("skylake-substrate")
        model = scenario.materialize().memory_factory()
        assert model.controller.channels == 6
        assert model.controller.timing.name == "DDR4-2666"


class TestSweepScaling:
    def test_default_scale_sweep(self):
        sweep = bench_sweep(1.0)
        assert len(sweep.store_fractions) == 3
        assert len(sweep.nop_counts) == 5

    def test_high_scale_densifies(self):
        small = bench_sweep(1.0)
        large = bench_sweep(2.0)
        assert len(large.store_fractions) > len(small.store_fractions)
        assert len(large.nop_counts) > len(small.nop_counts)


def _tiny_characterization(name: str, latency_ns: float = 50.0):
    return characterization(
        name=name,
        memory_kind="fixed-latency",
        memory_params={"latency_ns": latency_ns},
        cores=3,
        sweep=MessBenchmarkConfig(
            store_fractions=(0.0, 1.0),
            nop_counts=(0, 600),
            warmup_ns=1000.0,
            measure_ns=2500.0,
            chase_array_bytes=1024 * 1024,
            traffic_array_bytes=1024 * 1024,
        ),
    )


class TestFamilyCache:
    def test_same_digest_reuses_measurement(self):
        scenario = _tiny_characterization("cache-test-a")
        first = measured_family(scenario)
        second = measured_family(_tiny_characterization("cache-test-a"))
        assert second is first

    def test_different_digest_measures_again(self):
        family_a = measured_family(_tiny_characterization("cache-test-b"))
        family_b = measured_family(
            _tiny_characterization("cache-test-b", latency_ns=60.0)
        )
        assert family_a is not family_b
