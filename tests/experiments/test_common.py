"""Tests for the experiments' shared fixtures (common.py)."""

from __future__ import annotations

import pytest

from repro.dram.timing import DDR4_2666
from repro.experiments.common import (
    BENCH_HIERARCHY,
    bench_sweep,
    bench_system_config,
    graviton_substrate,
    hbm_substrate,
    measured_family,
    skylake_substrate,
    substrate_timing,
)
from repro.memmodels.fixed import FixedLatencyModel


class TestSystemConfigs:
    def test_default_bench_system(self):
        config = bench_system_config()
        assert config.cores == 24
        assert not config.in_order

    def test_in_order_variant(self):
        config = bench_system_config(cores=8, in_order=True)
        assert config.effective_mshrs == 2

    def test_hierarchy_overhead_is_cpu_side_latency(self):
        assert BENCH_HIERARCHY.total_hit_path_ns == pytest.approx(69.5)


class TestSubstrates:
    def test_skylake_substrate_configuration(self):
        model = skylake_substrate()
        assert model.controller.channels == 6
        assert model.controller.timing.name == "DDR4-2666"

    def test_graviton_substrate(self):
        assert graviton_substrate().controller.timing.name == "DDR5-4800"

    def test_hbm_substrate_channel_count(self):
        assert hbm_substrate(channels=8).controller.channels == 8

    def test_substrate_timing_lookup(self):
        assert substrate_timing("DDR4-2666") is DDR4_2666


class TestSweepScaling:
    def test_default_scale_sweep(self):
        sweep = bench_sweep(1.0)
        assert len(sweep.store_fractions) == 3
        assert len(sweep.nop_counts) == 5

    def test_high_scale_densifies(self):
        small = bench_sweep(1.0)
        large = bench_sweep(2.0)
        assert len(large.store_fractions) > len(small.store_fractions)
        assert len(large.nop_counts) > len(small.nop_counts)


class TestFamilyCache:
    def test_same_key_reuses_measurement(self):
        calls = []

        def factory():
            model = FixedLatencyModel(latency_ns=50.0)
            calls.append(model)
            return model

        first = measured_family("cache-test-a", factory, scale=0.99, cores=3)
        calls_after_first = len(calls)
        second = measured_family("cache-test-a", factory, scale=0.99, cores=3)
        assert second is first
        assert len(calls) == calls_after_first

    def test_different_key_measures_again(self):
        family_a = measured_family(
            "cache-test-b",
            lambda: FixedLatencyModel(latency_ns=50.0),
            scale=0.99,
            cores=3,
        )
        family_b = measured_family(
            "cache-test-c",
            lambda: FixedLatencyModel(latency_ns=50.0),
            scale=0.99,
            cores=3,
        )
        assert family_a is not family_b
