"""Tests for the decorator registry, option validation and result JSON."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    SPECS,
    ExperimentResult,
    experiment_ids,
    get_spec,
    register,
    run_experiment,
    validate_options,
)


class TestRegistration:
    def test_every_spec_has_metadata(self):
        for spec in SPECS.values():
            assert spec.title, spec.experiment_id
            assert spec.cost in ("cheap", "moderate", "expensive")
            assert spec.func is EXPERIMENTS[spec.experiment_id]
            assert spec.func.experiment_id == spec.experiment_id

    def test_paper_order_preserved(self):
        ids = experiment_ids()
        assert ids[:3] == ["table1", "fig2", "fig3"]
        assert ids[-3:] == ["wsweep", "thrash", "policydelta"]
        assert ids[-6:-3] == ["openpiton", "optane", "ablation"]

    def test_duplicate_id_rejected(self):
        with pytest.raises(ConfigurationError):

            @register("fig2", title="impostor")
            def run(scale: float = 1.0):  # pragma: no cover
                raise AssertionError("never runs")

        # the original registration is untouched
        assert SPECS["fig2"].title.startswith("Skylake")

    def test_new_registration_and_cleanup(self):
        @register("zz-test", title="synthetic", tags=("test",), cost="cheap")
        def run(scale: float = 1.0, *, knob: int = 3) -> ExperimentResult:
            result = ExperimentResult("zz-test", "synthetic", columns=["knob"])
            result.add(knob=knob)
            return result

        try:
            assert experiment_ids()[-1] == "zz-test"  # after paper order
            assert SPECS["zz-test"].params == {"knob": 3}
            result = run_experiment("zz-test", knob=7)
            assert result.rows == [{"knob": 7}]
        finally:
            del SPECS["zz-test"]
            del EXPERIMENTS["zz-test"]

    def test_invalid_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            register("zz-bad-cost", cost="free")

    def test_get_spec_unknown(self):
        with pytest.raises(ConfigurationError):
            get_spec("fig99")


class TestOptionValidation:
    def test_declared_options_introspected(self):
        assert SPECS["fig3"].params == {"platforms": None}
        assert SPECS["fig10"].params == {"memories": None}
        assert SPECS["fig2"].params == {}

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            run_experiment("fig2", bogus=1)

    def test_validate_options_helper(self):
        validate_options("fig3", {"platforms": "skylake"})
        with pytest.raises(ConfigurationError):
            validate_options("fig3", {"platform": "skylake"})  # typo

    def test_fig3_platform_filter(self):
        result = run_experiment("fig3", platforms="skylake,graviton")
        platforms = {row["platform"] for row in result.rows}
        assert len(platforms) == 2
        assert any("Skylake" in p for p in platforms)

    def test_fig3_unknown_platform(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig3", platforms="not-a-platform")

    def test_scale_is_keyword_only(self):
        with pytest.raises(TypeError):
            run_experiment("fig2", 2.0)  # noqa: B026 - the point of the test


# exact output of format_table(), trailing pad spaces included
GOLDEN_TABLE = (
    "== xdemo: serialization demo ==\n"
    "kind   value  ok \n"
    "-----  -----  ---\n"
    "small  1.25   yes\n"
    "large  12345  no \n"
    "empty  -      -  \n"
    "note: with a note attached"
)


def golden_result() -> ExperimentResult:
    result = ExperimentResult(
        "xdemo", "serialization demo", columns=["kind", "value", "ok"]
    )
    result.add(kind="small", value=1.25, ok="yes")
    result.add(kind="large", value=12345.0, ok="no")
    result.add(kind="empty", value=None, ok=None)
    result.note("with a note attached")
    return result


class TestResultSerialization:
    def test_format_table_golden(self):
        assert golden_result().format_table() == GOLDEN_TABLE

    def test_round_trip_preserves_table(self):
        original = golden_result()
        clone = ExperimentResult.from_dict(original.to_dict())
        assert clone.format_table() == GOLDEN_TABLE
        assert clone.to_dict() == original.to_dict()
        assert clone.digest() == original.digest()

    def test_round_trip_through_json_string(self):
        import json

        original = golden_result()
        clone = ExperimentResult.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert clone.format_table() == GOLDEN_TABLE

    def test_digest_tracks_content(self):
        a = golden_result()
        b = golden_result()
        assert a.digest() == b.digest()
        b.add(kind="extra", value=1.0, ok="yes")
        assert a.digest() != b.digest()

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_dict({"title": "missing id"})
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_dict(
                {
                    "experiment_id": "x",
                    "title": "t",
                    "columns": ["a"],
                    "rows": [{"not_a_column": 1}],
                }
            )

    def test_real_experiment_round_trips(self):
        original = run_experiment("fig2")
        clone = ExperimentResult.from_dict(original.to_dict())
        assert clone.format_table() == original.format_table()
        assert clone.digest() == original.digest()


class TestSpecImmutability:
    def test_params_view_is_read_only(self):
        spec = get_spec("fig3")
        with pytest.raises(TypeError):
            spec.params["platforms"] = "tampered"

    def test_params_still_iterable_and_testable(self):
        spec = get_spec("fig3")
        assert "platforms" in spec.params
        assert sorted(spec.params)
