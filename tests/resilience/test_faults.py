"""Tests for the seeded fault plan: matching, injection sites, format."""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import pytest

from repro.errors import CacheError, ResilienceError, SimulationError
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    WorkerCrashError,
    load_fault_plan,
)
from repro.resilience import faults as faults_mod
from repro.runner import ResultCache


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_empty_target_rejected(self):
        with pytest.raises(ResilienceError, match="target"):
            FaultSpec(kind="crash", target="")

    def test_non_positive_attempts_rejected(self):
        with pytest.raises(ResilienceError, match="attempts"):
            FaultSpec(kind="crash", attempts=(0,))
        with pytest.raises(ResilienceError, match="attempts"):
            FaultSpec(kind="crash", attempts=())

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ResilienceError, match="probability"):
            FaultSpec(kind="crash", probability=1.5)

    def test_negative_window_and_seconds_rejected(self):
        with pytest.raises(ResilienceError, match="window"):
            FaultSpec(kind="controller-nan", window=-1)
        with pytest.raises(ResilienceError, match="seconds"):
            FaultSpec(kind="hang", seconds=-1.0)

    def test_error_fault_requires_known_failure_kind(self):
        with pytest.raises(ResilienceError, match="failure_kind|raise one of"):
            FaultSpec(kind="error", failure_kind="timeout")

    def test_unknown_payload_key_rejected(self):
        with pytest.raises(ResilienceError, match="bogus"):
            FaultSpec.from_dict({"kind": "crash", "bogus": 1})


class TestSerialization:
    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(kind="crash", target="fig2"),
            FaultSpec(kind="hang", target="fig*", seconds=2.5, attempts=(1, 2)),
            FaultSpec(kind="error", target="ablation", failure_kind="cache-error"),
            FaultSpec(kind="cache-corrupt", target="*", probability=0.25),
            FaultSpec(kind="controller-nan", target="scenario:*", window=3),
            FaultSpec(
                kind="controller-nan", target="scenario:*", window=1, value=-5.0
            ),
        ],
    )
    def test_spec_round_trip(self, spec):
        rebuilt = FaultSpec.from_dict(spec.to_dict())
        # NaN defaults compare unequal; compare the serialized forms.
        assert rebuilt.to_dict() == spec.to_dict()

    def test_plan_round_trip_through_json(self):
        plan = FaultPlan(
            seed=1234,
            faults=(
                FaultSpec(kind="crash", target="fig2"),
                FaultSpec(kind="hang", target="fig17", seconds=30.0),
            ),
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        rebuilt = FaultPlan.from_dict(payload)
        assert rebuilt.to_dict() == plan.to_dict()

    def test_missing_marker_rejected(self):
        with pytest.raises(ResilienceError, match=faults_mod.FORMAT_KEY):
            FaultPlan.from_dict({"seed": 1, "faults": []})

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(ResilienceError, match="mystery"):
            FaultPlan.from_dict(
                {faults_mod.FORMAT_KEY: 1, "mystery": True, "faults": []}
            )

    def test_faults_must_be_a_list(self):
        with pytest.raises(ResilienceError, match="list"):
            FaultPlan.from_dict({faults_mod.FORMAT_KEY: 1, "faults": {}})


class TestScoping:
    def test_label_pattern_and_attempt_filtering(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="crash", target="fig*", attempts=(1,)),
                FaultSpec(kind="hang", target="scenario:*", attempts=(2,)),
            )
        )
        assert [s.kind for s in plan.scoped("fig2", 1).faults] == ["crash"]
        assert plan.scoped("fig2", 2).faults == ()
        assert [s.kind for s in plan.scoped("scenario:x", 2).faults] == ["hang"]
        assert plan.scoped("ablation", 1).faults == ()

    def test_zero_probability_never_fires(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind="crash", target="*", probability=0.0),)
        )
        assert all(
            plan.scoped(f"fig{n}", 1).faults == () for n in range(20)
        )

    def test_probability_draw_is_deterministic(self):
        plan = FaultPlan(
            seed=1234,
            faults=(FaultSpec(kind="crash", target="*", probability=0.5),),
        )
        first = [bool(plan.scoped(f"fig{n}", 1).faults) for n in range(40)]
        second = [bool(plan.scoped(f"fig{n}", 1).faults) for n in range(40)]
        assert first == second
        # A half-probability fault should fire for some labels, not all.
        assert any(first) and not all(first)

    def test_seed_changes_which_labels_fire(self):
        spec = FaultSpec(kind="crash", target="*", probability=0.5)
        a = FaultPlan(seed=1, faults=(spec,))
        b = FaultPlan(seed=2, faults=(spec,))
        fired_a = [bool(a.scoped(f"fig{n}", 1).faults) for n in range(40)]
        fired_b = [bool(b.scoped(f"fig{n}", 1).faults) for n in range(40)]
        assert fired_a != fired_b

    def test_matching_filters_by_kind(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="crash"),
                FaultSpec(kind="hang", seconds=0.0),
            )
        )
        assert [s.kind for s in plan.matching("hang")] == ["hang"]


class TestInjectionSites:
    def test_crash_is_survivable_inline(self):
        # In the main (parentless) process the crash degrades to a
        # classifiable exception instead of os._exit.
        plan = FaultPlan(faults=(FaultSpec(kind="crash", target="fig2"),))
        with pytest.raises(WorkerCrashError):
            plan.fire_entry_faults("fig2")

    def test_error_fault_raises_typed_exception(self):
        cache_fault = FaultPlan(
            faults=(FaultSpec(kind="error", failure_kind="cache-error"),)
        )
        with pytest.raises(CacheError):
            cache_fault.fire_entry_faults("fig2")
        model_fault = FaultPlan(
            faults=(FaultSpec(kind="error", failure_kind="model-error"),)
        )
        with pytest.raises(SimulationError):
            model_fault.fire_entry_faults("fig2")

    def test_hang_sleeps_for_requested_duration(self):
        plan = FaultPlan(faults=(FaultSpec(kind="hang", seconds=0.05),))
        start = time.monotonic()
        plan.fire_entry_faults("fig2")
        assert time.monotonic() - start >= 0.05

    def test_empty_plan_entry_is_noop(self):
        FaultPlan().fire_entry_faults("fig2")

    def test_feedback_override_matches_window(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="controller-nan", window=2, value=-1.0),
            )
        )
        assert plan.feedback_override(2) == -1.0
        assert plan.feedback_override(1) is None

    def test_feedback_override_defaults_to_nan(self):
        plan = FaultPlan(faults=(FaultSpec(kind="controller-nan", window=0),))
        assert math.isnan(plan.feedback_override(0))

    def test_corrupt_cache_entry_trashes_existing_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("test", {"x": 1})
        cache.put(key, {"rows": [1, 2, 3]})
        plan = FaultPlan(faults=(FaultSpec(kind="cache-corrupt"),))
        assert plan.corrupt_cache_entry(cache, key)
        # The corrupted entry quarantines on the next read.
        assert cache.get(key) is None
        assert list(cache.corrupt_entries())

    def test_corrupt_cache_entry_is_noop_on_cold_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        plan = FaultPlan(faults=(FaultSpec(kind="cache-corrupt"),))
        assert not plan.corrupt_cache_entry(cache, cache.key_for("t", {}))


class TestActivation:
    def test_activation_context_restores_previous(self):
        outer = FaultPlan(seed=1)
        inner = FaultPlan(seed=2)
        assert faults_mod.active() is None
        with faults_mod.activation(outer):
            assert faults_mod.active() is outer
            with faults_mod.activation(inner):
                assert faults_mod.active() is inner
            assert faults_mod.active() is outer
        assert faults_mod.active() is None

    def test_activation_with_none_deactivates(self):
        plan = faults_mod.activate(FaultPlan(seed=3))
        try:
            with faults_mod.activation(None):
                assert faults_mod.active() is None
            assert faults_mod.active() is plan
        finally:
            faults_mod.deactivate()


class TestLoadFaultPlan:
    def test_loads_valid_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {
                    faults_mod.FORMAT_KEY: 1,
                    "seed": 7,
                    "faults": [{"kind": "crash", "target": "fig2"}],
                }
            )
        )
        plan = load_fault_plan(path)
        assert plan.seed == 7
        assert plan.faults[0].kind == "crash"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ResilienceError, match="cannot read"):
            load_fault_plan(tmp_path / "absent.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ResilienceError, match="invalid JSON"):
            load_fault_plan(path)

    def test_example_plan_in_repo_loads(self):
        repo_root = Path(__file__).resolve().parents[2]
        plan = load_fault_plan(repo_root / "examples" / "chaos-plan.json")
        assert plan.seed == 1234
        assert {s.kind for s in plan.faults} >= {"crash", "hang"}
