"""Tests for the fault-tolerant execution layer."""
