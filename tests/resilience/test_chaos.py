"""Chaos suite: seeded fault plans driven through the real runner.

Every test here injects a fault from the deterministic plan format and
asserts the execution layer's contract: crashes retry or resume to
completion, hangs hit their deadline, corrupted cache entries are
quarantined and recomputed byte-identically, and corrupted controller
feedback degrades gracefully instead of crashing.
"""

from __future__ import annotations

import time

from repro.bench.harness import MessBenchmarkConfig
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy
from repro.runner import ResultCache, resume_run, run_many
from repro.scenario import characterization

#: Fixed seed for every chaos plan — runs must replay bit-for-bit.
CHAOS_SEED = 1234

#: Backoff-free policy so chaos tests spend no wall time sleeping.
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)


def crash_plan(target: str = "fig2") -> FaultPlan:
    """Crash on the first attempt only: transient by construction."""
    return FaultPlan(
        seed=CHAOS_SEED,
        faults=(FaultSpec(kind="crash", target=target, attempts=(1,)),),
    )


def tiny_mess_scenario(name: str = "chaos-mess"):
    """A small Mess-backed characterization: real control loop, quick."""
    return characterization(
        name=name,
        memory_kind="mess",
        memory_params={
            "curves": {"platform": "Intel Skylake Xeon Platinum"},
            "window_ops": 40,
        },
        cores=2,
        sweep=MessBenchmarkConfig(
            store_fractions=(0.0, 1.0),
            nop_counts=(0, 600),
            warmup_ns=500.0,
            measure_ns=1500.0,
            chase_array_bytes=512 * 1024,
            traffic_array_bytes=512 * 1024,
        ),
    )


class TestCrashRecovery:
    def test_inline_crash_retries_to_success(self):
        outcome = run_many(
            ["fig2"],
            jobs=1,
            use_cache=False,
            retry=FAST_RETRY,
            fault_plan=crash_plan(),
        )
        record = outcome.manifest.records[0]
        assert record.status == "ok"
        assert record.attempts == 2
        assert record.failure_kind is None

    def test_unretried_crash_is_classified_with_evidence(self):
        outcome = run_many(
            ["fig2"], jobs=1, use_cache=False, fault_plan=crash_plan()
        )
        record = outcome.manifest.records[0]
        assert record.status == "error"
        assert record.failure_kind == "crash"
        assert record.attempts == 1
        assert record.traceback and "WorkerCrashError" in record.traceback
        assert outcome.manifest.failure_summary() == {"crash": 1}

    def test_crash_then_resume_completes(self, tmp_path):
        crashed = run_many(
            ["fig2"], jobs=1, use_cache=False, fault_plan=crash_plan()
        )
        assert not crashed.manifest.ok
        checkpoint = tmp_path / "manifest.json"
        crashed.manifest.write(checkpoint)
        resumed = resume_run(checkpoint, jobs=1, use_cache=False)
        assert resumed.manifest.ok
        assert resumed.manifest.resumed_from == str(checkpoint)
        assert resumed.manifest.records[0].status == "ok"

    def test_pooled_crash_rebuilds_pool_and_completes(self):
        # A real os._exit in a worker surfaces as BrokenProcessPool; the
        # scheduler must rebuild the pool, re-dispatch everything that
        # was in flight, and still finish both experiments.
        outcome = run_many(
            ["fig2", "fig17"],
            jobs=2,
            use_cache=False,
            retry=FAST_RETRY,
            fault_plan=crash_plan("fig2"),
        )
        assert outcome.manifest.ok
        by_id = {r.experiment_id: r for r in outcome.manifest.records}
        assert by_id["fig2"].attempts == 2


class TestDeadlines:
    def test_hang_hits_deadline_and_is_classified_timeout(self):
        plan = FaultPlan(
            seed=CHAOS_SEED,
            faults=(FaultSpec(kind="hang", target="fig17", seconds=30.0),),
        )
        start = time.monotonic()
        outcome = run_many(
            ["fig17"],
            jobs=1,
            use_cache=False,
            deadline_s=1.5,
            fault_plan=plan,
        )
        wall = time.monotonic() - start
        record = outcome.manifest.records[0]
        assert record.status == "error"
        assert record.failure_kind == "timeout"
        # The 30 s hang must not be waited out.
        assert wall < 15.0
        assert outcome.manifest.failure_summary() == {"timeout": 1}


class TestCacheCorruption:
    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        clean = run_many(["fig2"], jobs=1, cache_dir=cache_dir)
        clean_digest = clean.manifest.records[0].result_digest
        plan = FaultPlan(
            seed=CHAOS_SEED,
            faults=(FaultSpec(kind="cache-corrupt", target="fig2"),),
        )
        chaotic = run_many(["fig2"], jobs=1, cache_dir=cache_dir, fault_plan=plan)
        record = chaotic.manifest.records[0]
        assert record.status == "ok"
        # Byte-identical result despite the corrupted checkpoint...
        assert record.result_digest == clean_digest
        # ...recomputed, not served from the trashed entry...
        assert record.cache_hits == 0
        # ...with the bad file quarantined for post-mortem.
        quarantined = list(ResultCache(cache_dir).corrupt_entries())
        assert len(quarantined) == 1
        assert quarantined[0].name.endswith(".corrupt")


class TestControllerCorruption:
    def test_nan_feedback_degrades_gracefully(self):
        plan = FaultPlan(
            seed=CHAOS_SEED,
            faults=(
                FaultSpec(kind="controller-nan", target="scenario:*", window=1),
            ),
        )
        outcome = run_many(
            scenarios=[tiny_mess_scenario("chaos-nan")],
            jobs=1,
            use_cache=False,
            fault_plan=plan,
        )
        record = outcome.manifest.records[0]
        assert record.status == "ok"
        assert record.degraded

    def test_healthy_scenario_is_not_marked_degraded(self):
        outcome = run_many(
            scenarios=[tiny_mess_scenario("chaos-clean")],
            jobs=1,
            use_cache=False,
        )
        record = outcome.manifest.records[0]
        assert record.status == "ok"
        assert not record.degraded


class TestAcceptance:
    def test_combined_fault_plan_completes_with_classified_outcomes(self):
        # Crash + cache corruption + controller corruption in one seeded
        # plan: retries and guardrails must carry the whole sweep to
        # completion with zero unclassified failures.
        plan = FaultPlan(
            seed=CHAOS_SEED,
            faults=(
                FaultSpec(kind="crash", target="fig2", attempts=(1,)),
                FaultSpec(kind="cache-corrupt", target="fig*"),
                FaultSpec(kind="controller-nan", target="scenario:*", window=1),
            ),
        )
        outcome = run_many(
            ["fig2"],
            scenarios=[tiny_mess_scenario("chaos-combo")],
            jobs=1,
            use_cache=False,
            retry=FAST_RETRY,
            fault_plan=plan,
        )
        assert outcome.manifest.ok
        assert outcome.manifest.failure_summary() == {}
        by_id = {r.experiment_id: r for r in outcome.manifest.records}
        assert by_id["fig2"].attempts == 2
        assert by_id["scenario:chaos-combo"].degraded
        assert "degraded=1" in outcome.manifest.summary()

    def test_same_plan_same_seed_replays_identically(self):
        runs = [
            run_many(
                ["fig2"],
                jobs=1,
                use_cache=False,
                retry=FAST_RETRY,
                fault_plan=crash_plan(),
            )
            for _ in range(2)
        ]
        digests = [run.manifest.records[0].result_digest for run in runs]
        attempts = [run.manifest.records[0].attempts for run in runs]
        assert digests[0] == digests[1]
        assert attempts == [2, 2]
