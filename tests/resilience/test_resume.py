"""Tests for checkpoint-resume: the manifest as the checkpoint."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runner import RunManifest, resume_run
from repro.runner.manifest import ExperimentRecord
from tests.resilience.test_chaos import tiny_mess_scenario


def ok_record(experiment_id: str, digest: str = "carried") -> ExperimentRecord:
    return ExperimentRecord(
        experiment_id=experiment_id,
        status="ok",
        rows=3,
        result_digest=digest,
    )


def failed_record(
    experiment_id: str, kind: str = "crash", **extra
) -> ExperimentRecord:
    return ExperimentRecord(
        experiment_id=experiment_id,
        status="error",
        error="boom",
        failure_kind=kind,
        **extra,
    )


class TestManifestAggregates:
    def test_pending_selects_non_terminal_records(self):
        manifest = RunManifest(
            records=[ok_record("fig2"), failed_record("fig17", "timeout")]
        )
        assert [r.experiment_id for r in manifest.pending()] == ["fig17"]

    def test_failure_summary_counts_by_kind(self):
        manifest = RunManifest(
            records=[
                ok_record("fig2"),
                failed_record("fig17", "timeout"),
                failed_record("fig3", "crash"),
                failed_record("fig4", "crash"),
            ]
        )
        assert manifest.failure_summary() == {"crash": 2, "timeout": 1}

    def test_legacy_record_without_kind_is_unclassified(self):
        record = failed_record("fig2")
        record.failure_kind = None
        manifest = RunManifest(records=[record])
        assert manifest.failure_summary() == {"unclassified": 1}

    def test_summary_line_reports_failure_classes_and_degraded(self):
        record = ok_record("fig2")
        record.degraded = True
        manifest = RunManifest(
            records=[record, failed_record("fig17", "timeout")]
        )
        line = manifest.summary()
        assert "degraded=1" in line
        assert "FAILED=1 (timeout=1)" in line


class TestResume:
    def test_nothing_pending_carries_records_over(self, tmp_path):
        path = tmp_path / "done.json"
        RunManifest(records=[ok_record("fig2"), ok_record("fig17")]).write(path)
        outcome = resume_run(path, use_cache=False)
        assert outcome.manifest.resumed_from == str(path)
        assert [r.experiment_id for r in outcome.manifest.records] == [
            "fig2",
            "fig17",
        ]
        assert not outcome.results  # nothing was re-executed

    def test_reruns_only_failed_records_preserving_order(self, tmp_path):
        path = tmp_path / "partial.json"
        RunManifest(
            records=[failed_record("fig2"), ok_record("fig17", digest="keep")]
        ).write(path)
        outcome = resume_run(path, jobs=1, use_cache=False)
        assert outcome.manifest.ok
        assert outcome.manifest.resumed_from == str(path)
        by_id = {r.experiment_id: r for r in outcome.manifest.records}
        # The failure was re-executed; the success was carried verbatim.
        assert by_id["fig2"].status == "ok"
        assert by_id["fig2"].result_digest not in (None, "carried")
        assert by_id["fig17"].result_digest == "keep"
        assert [r.experiment_id for r in outcome.manifest.records] == [
            "fig2",
            "fig17",
        ]
        assert sorted(outcome.results) == ["fig2"]

    def test_resume_reuses_recorded_options(self, tmp_path):
        path = tmp_path / "options.json"
        RunManifest(
            records=[
                failed_record("fig2", options={"bogus-option": 1}),
            ]
        ).write(path)
        # Recorded options flow back through validation on resume.
        with pytest.raises(ConfigurationError):
            resume_run(path, use_cache=False)

    def test_scenario_resume_requires_recorded_spec(self, tmp_path):
        path = tmp_path / "scenario.json"
        RunManifest(records=[failed_record("scenario:lost")]).write(path)
        with pytest.raises(ConfigurationError, match="scenario"):
            resume_run(path, use_cache=False)

    def test_scenario_resume_reruns_from_recorded_spec(self, tmp_path):
        scenario = tiny_mess_scenario("resumable")
        path = tmp_path / "scenario.json"
        RunManifest(
            records=[
                failed_record(
                    "scenario:resumable", scenario_spec=scenario.to_spec()
                )
            ]
        ).write(path)
        outcome = resume_run(path, jobs=1, use_cache=False)
        assert outcome.manifest.ok
        assert outcome.manifest.records[0].experiment_id == "scenario:resumable"

    def test_resume_is_idempotent_through_the_checkpoint(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        RunManifest(
            records=[failed_record("fig2"), ok_record("fig17", digest="keep")]
        ).write(path)
        first = resume_run(path, jobs=1, use_cache=False)
        assert first.manifest.ok
        first.manifest.write(path)
        second = resume_run(path, use_cache=False)
        assert not second.results
        assert [r.result_digest for r in second.manifest.records] == [
            r.result_digest for r in first.manifest.records
        ]
