"""Tests for RetryPolicy and the shared deterministic draw."""

from __future__ import annotations

import pytest

from repro.errors import ResilienceError
from repro.resilience import RetryPolicy, deterministic_fraction
from repro.resilience.failures import TRANSIENT_KINDS


class TestDeterministicFraction:
    def test_range(self):
        for index in range(100):
            draw = deterministic_fraction("x", index)
            assert 0.0 <= draw < 1.0

    def test_same_parts_same_draw(self):
        assert deterministic_fraction("retry", 7, "fig2", 1) == (
            deterministic_fraction("retry", 7, "fig2", 1)
        )

    def test_different_parts_different_draw(self):
        draws = {deterministic_fraction("fault", seed) for seed in range(32)}
        assert len(draws) == 32

    def test_spread_is_roughly_uniform(self):
        draws = [deterministic_fraction("u", index) for index in range(400)]
        mean = sum(draws) / len(draws)
        assert 0.4 < mean < 0.6


class TestValidation:
    def test_zero_attempts_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ResilienceError):
            RetryPolicy(max_delay_s=-1.0)

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.5)

    def test_unknown_retry_kind_rejected(self):
        with pytest.raises(ResilienceError, match="gremlin"):
            RetryPolicy(retry_on=("crash", "gremlin"))


class TestShouldRetry:
    def test_transient_kinds_retry_below_budget(self):
        policy = RetryPolicy(max_attempts=3)
        for kind in TRANSIENT_KINDS:
            assert policy.should_retry(kind, 1)
            assert policy.should_retry(kind, 2)
            assert not policy.should_retry(kind, 3)

    def test_model_error_never_retried_by_default(self):
        policy = RetryPolicy(max_attempts=5)
        assert not policy.should_retry("model-error", 1)

    def test_single_attempt_policy_never_retries(self):
        policy = RetryPolicy(max_attempts=1)
        assert not policy.should_retry("crash", 1)

    def test_retry_on_override(self):
        policy = RetryPolicy(max_attempts=2, retry_on=("model-error",))
        assert policy.should_retry("model-error", 1)
        assert not policy.should_retry("crash", 1)


class TestDelaySchedule:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, max_delay_s=10.0, jitter=0.0
        )
        delays = [policy.delay_s("fig2", n) for n in (1, 2, 3, 4)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=20, base_delay_s=1.0, max_delay_s=3.0, jitter=0.0
        )
        assert policy.delay_s("fig2", 10) == pytest.approx(3.0)

    def test_jitter_stays_in_band_and_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=1.0, jitter=0.5)
        for attempt in (1, 2):
            delay = policy.delay_s("fig17", attempt)
            assert 0.5 <= delay <= 1.5
            # A fresh, equal policy yields the identical schedule.
            assert delay == RetryPolicy(
                base_delay_s=1.0, max_delay_s=1.0, jitter=0.5
            ).delay_s("fig17", attempt)

    def test_seed_changes_jittered_schedule(self):
        a = RetryPolicy(base_delay_s=1.0, jitter=0.5, seed=1)
        b = RetryPolicy(base_delay_s=1.0, jitter=0.5, seed=2)
        assert a.delay_s("fig2", 1) != b.delay_s("fig2", 1)

    def test_zero_base_delay_is_zero(self):
        policy = RetryPolicy(base_delay_s=0.0, jitter=0.5)
        assert policy.delay_s("fig2", 3) == 0.0

    def test_attempt_below_one_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy().delay_s("fig2", 0)


class TestSerialization:
    def test_round_trip(self):
        policy = RetryPolicy(
            max_attempts=4,
            base_delay_s=0.25,
            max_delay_s=2.0,
            jitter=0.1,
            seed=99,
            retry_on=("timeout",),
        )
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_defaults(self):
        assert RetryPolicy.from_dict({}) == RetryPolicy()

    def test_malformed_payload_raises(self):
        with pytest.raises(ResilienceError):
            RetryPolicy.from_dict({"max_attempts": "lots"})
