"""Tests for simulator graceful degradation and controller guardrails.

A corrupted feedback value or a diverging controller must clamp to the
curve bounds and mark the run degraded — never crash, never poison the
feedback loop with NaN.
"""

from __future__ import annotations

import math

import pytest

from repro.core.controller import PIController
from repro.core.simulator import (
    DIVERGENCE_FACTOR,
    MessMemorySimulator,
    degraded_total,
)
from repro.request import AccessType, MemoryRequest
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience import faults as faults_mod


def drive(simulator, gap_ns=1.0, ops=4000):
    """Open-loop read stream at a fixed request rate."""
    now = 0.0
    for index in range(ops):
        simulator.access(MemoryRequest((index % 4096) * 64, AccessType.READ, now))
        now += gap_ns


def nan_plan(window: int = 1, value: float = float("nan")) -> FaultPlan:
    return FaultPlan(
        faults=(FaultSpec(kind="controller-nan", window=window, value=value),)
    )


class TestControllerGuard:
    def test_non_finite_observation_holds_estimate(self):
        controller = PIController()
        estimate = controller.update(10.0, float("nan"))
        assert estimate == 10.0
        assert controller.last_error == 0.0

    def test_infinite_observation_holds_estimate(self):
        controller = PIController()
        assert controller.update(10.0, float("inf")) == 10.0

    def test_finite_observation_still_converges(self):
        controller = PIController(convergence_factor=0.5)
        assert controller.update(10.0, 20.0) == pytest.approx(15.0)


class TestSimulatorDegradation:
    def test_nan_feedback_marks_degraded_without_crashing(self, small_family):
        with faults_mod.activation(nan_plan(window=1)):
            simulator = MessMemorySimulator(small_family, window_ops=200)
            drive(simulator)
        assert simulator.degraded
        assert simulator.degraded_windows >= 1
        assert math.isfinite(simulator.current_latency_ns)
        assert simulator.current_latency_ns > 0

    def test_negative_feedback_marks_degraded(self, small_family):
        with faults_mod.activation(nan_plan(window=1, value=-50.0)):
            simulator = MessMemorySimulator(small_family, window_ops=200)
            drive(simulator)
        assert simulator.degraded
        assert math.isfinite(simulator.current_latency_ns)

    def test_nan_feedback_holds_controller_position(self, small_family):
        # The corrupted window must not move the estimate: feeding the
        # controller its own estimate yields zero error.
        clean = MessMemorySimulator(small_family, window_ops=200)
        drive(clean)
        with faults_mod.activation(nan_plan(window=1)):
            faulted = MessMemorySimulator(small_family, window_ops=200)
            drive(faulted)
        assert faulted.current_latency_ns == pytest.approx(
            clean.current_latency_ns, rel=0.05
        )

    def test_diverging_controller_is_clamped(self, small_family):
        simulator = MessMemorySimulator(small_family, window_ops=200)
        runaway = small_family.max_bandwidth_gbps * DIVERGENCE_FACTOR * 100
        simulator.controller.update = lambda estimate, observed: runaway
        drive(simulator, gap_ns=2.0, ops=600)
        assert simulator.degraded
        # Clamped to the sane ceiling, not the runaway estimate.
        assert simulator._mess_bw <= small_family.max_bandwidth_gbps * 1.5

    def test_non_finite_controller_output_is_held(self, small_family):
        simulator = MessMemorySimulator(small_family, window_ops=200)
        simulator.controller.update = lambda estimate, observed: float("inf")
        drive(simulator, gap_ns=2.0, ops=600)
        assert simulator.degraded
        assert math.isfinite(simulator._mess_bw)

    def test_healthy_run_is_not_degraded(self, small_family):
        simulator = MessMemorySimulator(small_family, window_ops=200)
        drive(simulator)
        assert not simulator.degraded
        assert simulator.degraded_windows == 0

    def test_reset_clears_degraded_windows_and_replays(self, small_family):
        with faults_mod.activation(nan_plan(window=1)):
            simulator = MessMemorySimulator(small_family, window_ops=200)
            drive(simulator)
        first = simulator.degraded_windows
        assert first >= 1
        simulator.reset()
        assert not simulator.degraded
        # The plan was captured at construction, so a replay after reset
        # re-injects the same fault at the same window: deterministic.
        drive(simulator)
        assert simulator.degraded_windows == first

    def test_process_global_degraded_counter_advances(self, small_family):
        before = degraded_total()
        with faults_mod.activation(nan_plan(window=1)):
            simulator = MessMemorySimulator(small_family, window_ops=200)
            drive(simulator)
        assert degraded_total() > before
        assert simulator.degraded
