"""Tests for curve comparison, accuracy campaigns and row-buffer sweeps."""

from __future__ import annotations

import pytest

from repro.analysis.compare import compare_families
from repro.analysis.error import run_accuracy_campaign
from repro.analysis.rowbuffer import census_sweep
from repro.core.curve import BandwidthLatencyCurve
from repro.core.family import CurveFamily
from repro.dram.timing import DDR4_2666
from repro.errors import CurveError
from repro.memmodels.fixed import FixedLatencyModel
from repro.workloads.lmbench import LmbenchLatency


def family_with_scale(latency_scale: float, name: str) -> CurveFamily:
    return CurveFamily(
        [
            BandwidthLatencyCurve(
                1.0,
                [1, 40, 80, 110],
                [90 * latency_scale, 100 * latency_scale, 150 * latency_scale, 300 * latency_scale],
            ),
            BandwidthLatencyCurve(
                0.5,
                [1, 30, 60, 90],
                [100 * latency_scale, 120 * latency_scale, 200 * latency_scale, 400 * latency_scale],
            ),
        ],
        name=name,
    )


class TestCompareFamilies:
    def test_identical_families_zero_error(self):
        reference = family_with_scale(1.0, "ref")
        candidate = family_with_scale(1.0, "cand")
        comparison = compare_families(reference, candidate)
        assert comparison.mean_latency_error_pct == pytest.approx(0.0, abs=1e-9)
        assert comparison.unloaded_latency_error_pct == pytest.approx(0.0)
        assert comparison.saturated_bw_error_pct == pytest.approx(0.0)

    def test_scaled_latency_detected(self):
        reference = family_with_scale(1.0, "ref")
        candidate = family_with_scale(1.5, "cand")
        comparison = compare_families(reference, candidate)
        assert comparison.mean_latency_error_pct == pytest.approx(50.0, rel=0.05)

    def test_names_recorded(self):
        comparison = compare_families(
            family_with_scale(1.0, "ref"), family_with_scale(1.2, "cand")
        )
        assert comparison.reference_name == "ref"
        assert comparison.candidate_name == "cand"

    def test_grid_validation(self):
        with pytest.raises(CurveError):
            compare_families(
                family_with_scale(1.0, "a"),
                family_with_scale(1.0, "b"),
                grid_points=1,
            )


class TestAccuracyCampaign:
    def test_reference_model_has_zero_error(self, tiny_system_config):
        actual, reports = run_accuracy_campaign(
            system_config=tiny_system_config,
            actual_factory=lambda: FixedLatencyModel(latency_ns=60.0),
            model_factories={
                "same": lambda: FixedLatencyModel(latency_ns=60.0),
                "slower": lambda: FixedLatencyModel(latency_ns=120.0),
            },
            workload_factories=[lambda: LmbenchLatency(chase_ops=200)],
        )
        assert actual["lmbench"] > 0
        by_name = {r.model_name: r for r in reports}
        assert by_name["same"].mean_error_pct == pytest.approx(0.0, abs=0.5)
        assert by_name["slower"].mean_error_pct > 20.0
        assert all(r.wall_time_s > 0 for r in reports)


class TestRowBufferSweep:
    def test_census_rates_valid(self):
        censuses = census_sweep(
            DDR4_2666,
            channels=2,
            read_ratio=1.0,
            pressures=(0.5, 2.0),
            ops=2000,
        )
        assert len(censuses) == 2
        for census in censuses:
            total = census.hit_rate + census.empty_rate + census.miss_rate
            assert total == pytest.approx(1.0)
            assert census.bandwidth_gbps > 0

    def test_pressure_raises_bandwidth(self):
        censuses = census_sweep(
            DDR4_2666,
            channels=2,
            read_ratio=1.0,
            pressures=(0.25, 4.0),
            ops=2000,
        )
        assert censuses[1].bandwidth_gbps > censuses[0].bandwidth_gbps
