"""Unit tests for the cycle-level DRAM controller."""

from __future__ import annotations

import pytest

from repro.dram.bank import BankState, RankState
from repro.dram.controller import DramController
from repro.dram.stats import RowBufferOutcome, RowBufferStats
from repro.dram.timing import DDR4_2666
from repro.errors import ConfigurationError, SimulationError
from repro.request import AccessType, MemoryRequest


def read(address, at):
    return MemoryRequest(address, AccessType.READ, at)


def write(address, at):
    return MemoryRequest(address, AccessType.WRITE, at)


@pytest.fixture
def controller():
    return DramController(DDR4_2666, channels=2)


class TestConfiguration:
    def test_invalid_page_policy(self):
        with pytest.raises(ConfigurationError):
            DramController(DDR4_2666, page_policy="weird")

    def test_invalid_write_queue(self):
        with pytest.raises(ConfigurationError):
            DramController(DDR4_2666, write_queue_depth=0)

    def test_peak_bandwidth(self, controller):
        assert controller.peak_bandwidth_gbps == pytest.approx(
            2 * DDR4_2666.channel_peak_gbps
        )


class TestReadTiming:
    def test_idle_empty_read_latency(self, controller):
        result = controller.submit(read(0, 0.0))
        expected = DDR4_2666.tRCD + DDR4_2666.tCL + DDR4_2666.tBURST
        assert result.latency_ns == pytest.approx(expected)
        assert result.outcome is RowBufferOutcome.EMPTY

    def test_row_hit_is_faster(self, controller):
        controller.submit(read(0, 0.0))
        result = controller.submit(read(64 * 2, 100.0))  # same channel, next col
        assert result.outcome is RowBufferOutcome.HIT
        assert result.latency_ns == pytest.approx(
            DDR4_2666.tCL + DDR4_2666.tBURST
        )

    def test_row_miss_pays_precharge(self, controller):
        controller.submit(read(0, 0.0))
        # same bank, different row: conflict
        conflict = _same_bank_other_row(controller, 0)
        result = controller.submit(read(conflict, 200.0))
        assert result.outcome is RowBufferOutcome.MISS
        assert result.latency_ns == pytest.approx(
            DDR4_2666.tRP + DDR4_2666.tRCD + DDR4_2666.tCL + DDR4_2666.tBURST
        )

    def test_out_of_order_submission_rejected(self, controller):
        controller.submit(read(0, 100.0))
        with pytest.raises(SimulationError, match="time order"):
            controller.submit(read(64, 50.0))


def _same_bank_other_row(controller: DramController, address: int) -> int:
    """Find an address on the same (channel, rank, bank) but another row."""
    target = controller.mapper.decode(address)
    candidate = address
    while True:
        candidate += DDR4_2666.row_bytes * controller.channels
        decoded = controller.mapper.decode(candidate)
        if (
            decoded.channel == target.channel
            and decoded.rank == target.rank
            and decoded.bank == target.bank
            and decoded.row != target.row
        ):
            return candidate


class TestWrites:
    def test_posted_write_is_cheap(self, controller):
        result = controller.submit(write(0, 0.0))
        assert result.latency_ns == pytest.approx(
            DramController.WRITE_ACCEPT_NS
        )

    def test_full_buffer_stalls(self):
        controller = DramController(DDR4_2666, channels=1, write_queue_depth=4)
        latencies = [
            controller.submit(write(i * 64, 0.0)).latency_ns for i in range(12)
        ]
        assert controller.stats.write_stalls > 0
        assert max(latencies) > DramController.WRITE_ACCEPT_NS

    def test_saturation_throughput_bounded_by_peak(self):
        controller = DramController(DDR4_2666, channels=1)
        last = 0.0
        n = 4000
        for i in range(n):
            result = controller.submit(read(i * 64, i * 0.2))  # 320 GB/s ask
            last = max(last, result.completion_ns)
        achieved = n * 64 / last
        assert achieved <= DDR4_2666.channel_peak_gbps * 1.01


class TestRefresh:
    def test_refresh_counted(self, controller):
        # park requests far apart so refreshes become due
        controller.submit(read(0, 0.0))
        controller.submit(read(64, 3 * DDR4_2666.tREFI))
        assert controller.stats.refreshes >= 2

    def test_refresh_closes_rows(self, controller):
        controller.submit(read(0, 0.0))
        result = controller.submit(read(64 * 2, 3 * DDR4_2666.tREFI))
        assert result.outcome is RowBufferOutcome.EMPTY


class TestPagePolicy:
    def test_closed_page_never_hits(self):
        controller = DramController(DDR4_2666, channels=1, page_policy="closed")
        controller.submit(read(0, 0.0))
        result = controller.submit(read(64, 100.0))
        assert result.outcome is not RowBufferOutcome.HIT


class TestStats:
    def test_row_buffer_census(self, controller):
        controller.submit(read(0, 0.0))
        controller.submit(read(64 * 2, 50.0))
        stats = controller.row_buffer_stats()
        assert stats.total == 2
        assert stats.hits == 1

    def test_rates_sum_to_one(self, controller):
        for i in range(50):
            controller.submit(read(i * 64, i * 10.0))
        hit, empty, miss = controller.row_buffer_stats().rates()
        assert hit + empty + miss == pytest.approx(1.0)

    def test_empty_census_rates(self):
        assert RowBufferStats().rates() == (0.0, 0.0, 0.0)

    def test_merged_census(self):
        a = RowBufferStats(hits=1, empties=2, misses=3)
        b = RowBufferStats(hits=10, empties=20, misses=30)
        merged = a.merged_with(b)
        assert (merged.hits, merged.empties, merged.misses) == (11, 22, 33)

    def test_reset(self, controller):
        controller.submit(read(0, 0.0))
        controller.reset()
        assert controller.stats.accesses == 0
        assert controller.row_buffer_stats().total == 0


class TestBankState:
    def test_classify(self):
        bank = BankState()
        assert bank.classify(5) is RowBufferOutcome.EMPTY
        bank.open_row = 5
        assert bank.classify(5) is RowBufferOutcome.HIT
        assert bank.classify(6) is RowBufferOutcome.MISS

    def test_faw_window(self):
        rank = RankState()
        for t in (0.0, 1.0, 2.0, 3.0):
            rank.record_activate(t)
        assert rank.faw_earliest_ns(DDR4_2666) == pytest.approx(
            0.0 + DDR4_2666.tFAW
        )
        rank.record_activate(25.0)
        assert rank.faw_earliest_ns(DDR4_2666) == pytest.approx(
            1.0 + DDR4_2666.tFAW
        )

    def test_faw_inactive_below_four(self):
        rank = RankState()
        rank.record_activate(0.0)
        assert rank.faw_earliest_ns(DDR4_2666) == 0.0
