"""Property-based tests on DRAM controller and simulator invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.simulator import MessMemorySimulator
from repro.dram.controller import DramController
from repro.dram.timing import DDR4_2666, DDR5_4800
from repro.platforms.presets import INTEL_SKYLAKE, family
from repro.request import AccessType, MemoryRequest


@st.composite
def request_streams(draw):
    """Random time-ordered request streams."""
    n = draw(st.integers(min_value=5, max_value=120))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    addresses = draw(
        st.lists(
            st.integers(min_value=0, max_value=1 << 28),
            min_size=n,
            max_size=n,
        )
    )
    writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    now = 0.0
    requests = []
    for gap, address, is_write in zip(gaps, addresses, writes):
        now += gap
        requests.append(
            MemoryRequest(
                (address // 64) * 64,
                AccessType.WRITE if is_write else AccessType.READ,
                now,
            )
        )
    return requests


class TestControllerInvariants:
    @given(requests=request_streams())
    @settings(max_examples=50, deadline=None)
    def test_completion_never_precedes_issue(self, requests):
        controller = DramController(DDR4_2666, channels=2)
        for request in requests:
            result = controller.submit(request)
            assert result.completion_ns >= request.issue_time_ns
            assert result.start_ns >= request.issue_time_ns - 1e-9

    @given(requests=request_streams())
    @settings(max_examples=50, deadline=None)
    def test_stats_account_every_request(self, requests):
        controller = DramController(DDR5_4800, channels=3)
        for request in requests:
            controller.submit(request)
        stats = controller.stats
        assert stats.reads + stats.writes == len(requests)
        assert stats.reads == sum(
            1 for r in requests if r.access_type is AccessType.READ
        )

    @given(requests=request_streams())
    @settings(max_examples=30, deadline=None)
    def test_read_latency_at_least_device_minimum(self, requests):
        controller = DramController(DDR4_2666, channels=2)
        floor = DDR4_2666.tCL + DDR4_2666.tBURST
        for request in requests:
            result = controller.submit(request)
            if request.access_type is AccessType.READ:
                assert result.latency_ns >= floor - 1e-9


class TestSimulatorInvariants:
    @given(
        gap=st.floats(min_value=0.2, max_value=50.0),
        write_every=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_latency_always_within_family_bounds(self, gap, write_every):
        curves = family(INTEL_SKYLAKE)
        simulator = MessMemorySimulator(curves, window_ops=100)
        lower = 0.0  # the capacity pipe can only add, never subtract
        upper = max(c.max_latency_ns for c in curves)
        now = 0.0
        for index in range(1200):
            is_write = write_every and index % (write_every + 1) == write_every
            latency = simulator.access(
                MemoryRequest(
                    (index % 4096) * 64,
                    AccessType.WRITE if is_write else AccessType.READ,
                    now,
                )
            )
            assert latency >= simulator.min_latency_ns - 1e-9
            assert latency >= lower
            now += gap
        # below saturation the latency must stay within the curve range
        if 64.0 / gap < 0.5 * curves.max_bandwidth_gbps:
            assert simulator.current_latency_ns <= upper

    @given(gap=st.floats(min_value=0.2, max_value=20.0))
    @settings(max_examples=30, deadline=None)
    def test_position_estimate_is_non_negative_and_bounded(self, gap):
        curves = family(INTEL_SKYLAKE)
        simulator = MessMemorySimulator(curves, window_ops=100)
        now = 0.0
        for index in range(2000):
            simulator.access(
                MemoryRequest((index % 4096) * 64, AccessType.READ, now)
            )
            now += gap
            assert simulator.current_position_gbps >= 0.0
        # the estimate tracks the *offered* rate (the windows measure
        # arrival bandwidth; with an open-loop driver the capacity pipe
        # bounds completions, not arrivals), with cold-start headroom
        offered = 64.0 / gap
        assert simulator.current_position_gbps <= 1.5 * offered + 5.0
