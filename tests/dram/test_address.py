"""Unit tests for the address mapper."""

from __future__ import annotations

import pytest

from repro.dram.address import AddressMapper
from repro.dram.timing import DDR4_2666
from repro.errors import ConfigurationError


@pytest.fixture
def mapper():
    return AddressMapper(DDR4_2666, channels=4, bank_hash=False)


class TestDecode:
    def test_line_interleave_rotates_channels(self, mapper):
        channels = [mapper.decode(i * 64).channel for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_line_same_coordinates(self, mapper):
        assert mapper.decode(64) == mapper.decode(127)

    def test_columns_advance_within_row(self, mapper):
        # successive lines on one channel advance the column
        decoded = [mapper.decode((i * 4) * 64) for i in range(4)]
        assert all(d.channel == 0 for d in decoded)
        assert [d.column for d in decoded] == [0, 1, 2, 3]
        assert len({(d.rank, d.bank, d.row) for d in decoded}) == 1

    def test_row_changes_after_row_bytes(self, mapper):
        lines_per_row = DDR4_2666.row_bytes // 64
        first = mapper.decode(0)
        later = mapper.decode(lines_per_row * 4 * 64)  # 4 channels
        assert (later.bank, later.row) != (first.bank, first.row)

    def test_fields_in_range(self, mapper):
        for address in range(0, 1 << 22, 8191 * 64):
            decoded = mapper.decode(address)
            assert 0 <= decoded.channel < 4
            assert 0 <= decoded.rank < DDR4_2666.ranks
            assert 0 <= decoded.bank < DDR4_2666.banks_per_rank
            assert 0 <= decoded.column < DDR4_2666.row_bytes // 64

    def test_negative_address_rejected(self, mapper):
        with pytest.raises(ConfigurationError):
            mapper.decode(-64)


class TestBankHash:
    def test_hash_spreads_power_of_two_strides(self):
        plain = AddressMapper(DDR4_2666, channels=6, bank_hash=False)
        hashed = AddressMapper(DDR4_2666, channels=6, bank_hash=True)
        stride = 8 * 1024 * 1024  # the layout that piled onto 3 banks
        plain_banks = {
            (d.rank, d.bank)
            for d in (plain.decode(i * stride) for i in range(16))
        }
        hashed_banks = {
            (d.rank, d.bank)
            for d in (hashed.decode(i * stride) for i in range(16))
        }
        assert len(hashed_banks) > len(plain_banks)

    def test_hash_preserves_row_and_column(self):
        plain = AddressMapper(DDR4_2666, channels=6, bank_hash=False)
        hashed = AddressMapper(DDR4_2666, channels=6, bank_hash=True)
        for address in (0, 4096, 1 << 20, 123 * 64):
            a, b = plain.decode(address), hashed.decode(address)
            assert (a.channel, a.rank, a.row, a.column) == (
                b.channel,
                b.rank,
                b.row,
                b.column,
            )

    def test_hash_is_deterministic(self):
        mapper = AddressMapper(DDR4_2666, channels=6)
        assert mapper.decode(12345 * 64) == mapper.decode(12345 * 64)


class TestInterleaveGranularity:
    def test_coarse_interleave_keeps_runs_on_one_channel(self):
        mapper = AddressMapper(DDR4_2666, channels=4, interleave_bytes=512)
        channels = [mapper.decode(i * 64).channel for i in range(16)]
        assert channels[:8] == [0] * 8
        assert channels[8:16] == [1] * 8

    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(DDR4_2666, channels=2, interleave_bytes=32)
        with pytest.raises(ConfigurationError):
            AddressMapper(DDR4_2666, channels=2, interleave_bytes=96)

    def test_invalid_channels(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(DDR4_2666, channels=0)
