"""Unit tests for DRAM timing presets."""

from __future__ import annotations

import dataclasses

import pytest

from repro.dram.timing import (
    DDR4_2666,
    DDR5_4800,
    HBM2,
    PRESETS,
    DramTiming,
    preset,
)
from repro.errors import ConfigurationError
from repro.units import ddr_rate_to_gbps


class TestPresets:
    def test_all_presets_registered(self):
        assert {"DDR4-2666", "DDR4-3200", "DDR5-4800", "DDR5-5600", "HBM2", "HBM2E"} <= set(
            PRESETS
        )

    def test_lookup(self):
        assert preset("DDR4-2666") is DDR4_2666

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="unknown DRAM preset"):
            preset("DDR9-9999")

    def test_ddr4_channel_peak(self):
        assert DDR4_2666.channel_peak_gbps == pytest.approx(
            ddr_rate_to_gbps(2666)
        )

    def test_burst_time_matches_peak(self):
        # one 64-byte line at the channel's peak rate
        assert DDR4_2666.tBURST == pytest.approx(64 / DDR4_2666.channel_peak_gbps)
        assert HBM2.tBURST == pytest.approx(2.0)

    def test_total_banks(self):
        assert DDR4_2666.total_banks == 32
        assert DDR5_4800.total_banks == 64

    def test_random_read_latency(self):
        expected = DDR4_2666.tRP + DDR4_2666.tRCD + DDR4_2666.tCL
        assert DDR4_2666.random_read_latency == pytest.approx(expected)


class TestValidation:
    def test_negative_timing_rejected(self):
        with pytest.raises(ConfigurationError, match="tCL"):
            dataclasses.replace(DDR4_2666, tCL=-1.0)

    def test_zero_banks_rejected(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(DDR4_2666, banks_per_rank=0)

    def test_tiny_row_rejected(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(DDR4_2666, row_bytes=32)

    def test_custom_timing_constructs(self):
        timing = DramTiming(
            name="custom",
            channel_peak_gbps=10.0,
            tCL=10, tCWL=8, tRCD=10, tRP=10, tRAS=30, tWR=12, tWTR=6,
            tRTW=2, tFAW=20, tRRD=5, tRFC=300, tREFI=7800,
        )
        assert timing.tBURST == pytest.approx(6.4)
