"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig18" in out
        assert "ablation" in out

    def test_lists_titles_and_costs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cheap" in out and "expensive" in out
        assert "Skylake bandwidth-latency curve family" in out
        assert "options: platforms" in out


class TestRun:
    def test_runs_cheap_experiment(self, capsys, tmp_path):
        csv = tmp_path / "out.csv"
        assert main(["run", "fig17", "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out
        assert csv.exists()

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_some_selection(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_all_conflicts_with_explicit_ids(self):
        with pytest.raises(SystemExit):
            main(["run", "fig17", "--all"])

    def test_multiple_experiments_with_jobs(self, capsys, tmp_path):
        manifest = tmp_path / "m.json"
        assert (
            main(
                [
                    "run",
                    "fig2",
                    "fig17",
                    "--jobs",
                    "2",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--manifest",
                    str(manifest),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out
        payload = json.loads(manifest.read_text())
        assert {e["experiment_id"] for e in payload["experiments"]} == {
            "fig2",
            "fig17",
        }
        assert all(e["status"] == "ok" for e in payload["experiments"])

    def test_opt_flag_passes_options(self, capsys, tmp_path):
        assert (
            main(
                [
                    "run",
                    "fig3",
                    "--no-cache",
                    "--opt",
                    "platforms=skylake",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Skylake" in out
        assert "Graviton" not in out

    def test_opt_rejected_for_multiple_experiments(self):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "fig17", "--opt", "platforms=x"])

    def test_malformed_opt_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig3", "--opt", "noequalsign"])

    def test_bad_option_value_returns_error(self, capsys):
        assert main(["run", "fig3", "--no-cache", "--opt", "bogus=1"]) == 1
        assert "bogus" in capsys.readouterr().err

    def test_warm_cache_reports_hits(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "fig17", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["run", "fig17", "--cache-dir", cache_dir]) == 0
        assert "cache_hits=1" in capsys.readouterr().out


class TestRunScenario:
    def test_runs_preset_scenario_with_overrides(self, capsys, tmp_path):
        assert (
            main(
                [
                    "run",
                    "--scenario",
                    "skylake-substrate",
                    "--no-cache",
                    "--opt",
                    "system.cores=2",
                    "--opt",
                    "sweep.nop_counts=(0, 600)",
                    "--opt",
                    "sweep.warmup_ns=500.0",
                    "--opt",
                    "sweep.measure_ns=1500.0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "scenario:skylake-substrate" in out
        assert "scenario digest" in out

    def test_runs_scenario_file_through_cache(self, capsys, tmp_path):
        from repro.scenario import preset_scenario

        scenario = preset_scenario("skylake-substrate").with_overrides(
            {
                "system.cores": 2,
                "sweep.nop_counts": (0, 600),
                "sweep.warmup_ns": 500.0,
                "sweep.measure_ns": 1500.0,
            }
        )
        path = tmp_path / "scn.json"
        path.write_text(json.dumps(scenario.to_spec()))
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "--scenario", str(path), "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["run", "--scenario", str(path), "--cache-dir", cache_dir]) == 0
        assert "cache_hits=1" in capsys.readouterr().out

    def test_unknown_scenario_reference_errors(self, capsys):
        assert main(["run", "--scenario", "bogus-substrate"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_opt_rejected_for_scenario_plus_experiment(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "fig17",
                    "--scenario",
                    "skylake-substrate",
                    "--opt",
                    "system.cores=2",
                ]
            )


class TestScenarioCommand:
    def test_list_shows_presets(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "skylake-substrate" in out
        assert "hbm-substrate" in out

    def test_show_emits_canonical_json(self, capsys):
        assert main(["scenario", "show", "skylake-substrate"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["repro_scenario"] == 1
        assert payload["memory"]["kind"] == "cycle-accurate"

    def test_digest_is_stable_hex(self, capsys):
        assert main(["scenario", "digest", "skylake-substrate"]) == 0
        first = capsys.readouterr().out.split()[0]
        assert main(["scenario", "digest", "skylake-substrate"]) == 0
        second = capsys.readouterr().out.split()[0]
        assert first == second
        assert len(first) == 64
        assert all(ch in "0123456789abcdef" for ch in first)

    def test_validate_defaults_to_presets(self, capsys):
        assert main(["scenario", "validate"]) == 0
        out = capsys.readouterr().out
        assert "skylake-substrate: ok" in out

    def test_validate_flags_broken_file(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"repro_scenario": 1, "name": "x"}))
        assert main(["scenario", "validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_show_needs_a_reference(self, capsys):
        with pytest.raises(SystemExit):
            main(["scenario", "show"])


class TestRunTelemetry:
    def test_trace_and_metrics_flags(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        manifest = tmp_path / "m.json"
        assert (
            main(
                [
                    "run",
                    "optane",
                    "--no-cache",
                    "--trace",
                    str(trace),
                    "--metrics",
                    str(metrics),
                    "--manifest",
                    str(manifest),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "metrics written to" in out
        document = json.loads(trace.read_text())
        assert any(e["ph"] == "X" for e in document["traceEvents"])
        assert "repro_sim_requests_total" in metrics.read_text()
        payload = json.loads(manifest.read_text())
        assert payload["experiments"][0]["telemetry"]["counters"][
            "sim.requests"
        ] > 0

    def test_no_flags_no_telemetry(self, capsys, tmp_path):
        manifest = tmp_path / "m.json"
        assert (
            main(["run", "fig17", "--no-cache", "--manifest", str(manifest)])
            == 0
        )
        payload = json.loads(manifest.read_text())
        assert payload["experiments"][0]["telemetry"] is None


class TestTelemetryCommand:
    def _export(self, tmp_path):
        trace = tmp_path / "trace.json"
        assert (
            main(["run", "optane", "--no-cache", "--trace", str(trace)]) == 0
        )
        return trace

    def test_summarize_human(self, capsys, tmp_path):
        trace = self._export(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "format: chrome-trace" in out
        assert "runner.experiment" in out

    def test_summarize_json(self, capsys, tmp_path):
        trace = self._export(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "chrome-trace"
        assert "runner.experiment" in payload["spans"]

    def test_missing_file_is_an_error(self, capsys, tmp_path):
        assert main(["telemetry", "summarize", str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().err

    def test_action_required(self):
        with pytest.raises(SystemExit):
            main(["telemetry"])


class TestCacheCommand:
    def test_info_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "fig17", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:    1" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "entries:    0" in capsys.readouterr().out

    def test_info_json(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "fig17", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--json", "--cache-dir", cache_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["kinds"] == {"result": 1}
        assert payload["kind_bytes"]["result"] > 0
        (entry,) = payload["entry_list"]
        assert entry["kind"] == "result"
        assert entry["bytes"] > 0
        assert entry["key"]

    def test_json_rejected_for_clear(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "cache",
                    "clear",
                    "--json",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                ]
            )

    def test_requires_action(self):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestCurves:
    def test_prints_preset_platform(self, capsys):
        assert main(["curves", "intel-skylake-xeon-platinum"]) == 0
        out = capsys.readouterr().out
        assert "Skylake" in out
        assert "unloaded 89 ns" in out

    def test_special_families(self, capsys, tmp_path):
        csv = tmp_path / "cxl.csv"
        assert main(["curves", "cxl", "--csv", str(csv)]) == 0
        assert csv.exists()
        assert main(["curves", "optane"]) == 0

    def test_unknown_platform_exit_code(self, capsys):
        assert main(["curves", "bogus"]) == 2
        assert "available" in capsys.readouterr().err


class TestCharacterize:
    def test_small_characterization(self, capsys):
        assert (
            main(
                [
                    "characterize",
                    "--preset",
                    "DDR4-2666",
                    "--channels",
                    "2",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "unloaded" in out
        assert "GB/s" in out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["characterize", "--preset", "DDR9"])


class TestParser:
    def test_command_required(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])


class TestRunResilience:
    def crash_plan(self, tmp_path, target="fig2") -> str:
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {
                    "repro_fault_plan": 1,
                    "seed": 1234,
                    "faults": [
                        {"kind": "crash", "target": target, "attempts": [1]}
                    ],
                }
            )
        )
        return str(path)

    def test_injected_crash_with_retries_succeeds(self, capsys, tmp_path):
        plan = self.crash_plan(tmp_path)
        assert main(
            ["run", "fig2", "--inject-faults", plan, "--retries", "1"]
        ) == 0
        assert "fig2" in capsys.readouterr().out

    def test_unretried_failure_exits_nonzero_with_class_summary(
        self, capsys, tmp_path
    ):
        plan = self.crash_plan(tmp_path)
        assert main(["run", "fig2", "--inject-faults", plan]) == 1
        captured = capsys.readouterr()
        assert "FAILED=1 (crash=1)" in captured.out
        assert "failed: crash: 1 experiment" in captured.err

    def test_negative_retries_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--retries", "-1"])
        assert "--retries" in capsys.readouterr().err

    def test_missing_fault_plan_is_an_error(self, capsys, tmp_path):
        missing = str(tmp_path / "absent.json")
        assert main(["run", "fig2", "--inject-faults", missing]) == 1
        assert "cannot read fault plan" in capsys.readouterr().err

    def test_resume_excludes_other_selections(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--resume", str(tmp_path / "m.json")])
        assert "--resume" in capsys.readouterr().err

    def test_crash_checkpoint_then_resume_completes(self, capsys, tmp_path):
        plan = self.crash_plan(tmp_path)
        manifest = tmp_path / "manifest.json"
        assert main(
            [
                "run",
                "fig2",
                "--inject-faults",
                plan,
                "--manifest",
                str(manifest),
            ]
        ) == 1
        capsys.readouterr()
        assert main(["run", "--resume", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert f"manifest written to {manifest}" in out
        # The checkpoint was rewritten: resuming again finds nothing.
        assert main(["run", "--resume", str(manifest)]) == 0
        assert "nothing to resume" in capsys.readouterr().out

    def test_deadline_classifies_hang_as_timeout(self, capsys, tmp_path):
        plan = tmp_path / "hang.json"
        plan.write_text(
            json.dumps(
                {
                    "repro_fault_plan": 1,
                    "faults": [
                        {"kind": "hang", "target": "fig17", "seconds": 30.0}
                    ],
                }
            )
        )
        assert main(
            [
                "run",
                "fig17",
                "--inject-faults",
                str(plan),
                "--deadline",
                "1.5",
            ]
        ) == 1
        captured = capsys.readouterr()
        assert "FAILED=1 (timeout=1)" in captured.out
        assert "failed: timeout: 1 experiment" in captured.err


class TestCacheCorruptReport:
    def test_cache_info_reports_quarantined_entries(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        plan = tmp_path / "corrupt.json"
        plan.write_text(
            json.dumps(
                {
                    "repro_fault_plan": 1,
                    "faults": [{"kind": "cache-corrupt", "target": "fig2"}],
                }
            )
        )
        assert main(["run", "fig2", "--cache-dir", cache_dir]) == 0
        assert main(
            [
                "run",
                "fig2",
                "--cache-dir",
                cache_dir,
                "--inject-faults",
                str(plan),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "corrupt:    1 quarantined" in out
        assert "moved aside" in out
