"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig18" in out
        assert "ablation" in out


class TestRun:
    def test_runs_cheap_experiment(self, capsys, tmp_path):
        csv = tmp_path / "out.csv"
        assert main(["run", "fig17", "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out
        assert csv.exists()

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])


class TestCurves:
    def test_prints_preset_platform(self, capsys):
        assert main(["curves", "intel-skylake-xeon-platinum"]) == 0
        out = capsys.readouterr().out
        assert "Skylake" in out
        assert "unloaded 89 ns" in out

    def test_special_families(self, capsys, tmp_path):
        csv = tmp_path / "cxl.csv"
        assert main(["curves", "cxl", "--csv", str(csv)]) == 0
        assert csv.exists()
        assert main(["curves", "optane"]) == 0

    def test_unknown_platform_exit_code(self, capsys):
        assert main(["curves", "bogus"]) == 2
        assert "available" in capsys.readouterr().err


class TestCharacterize:
    def test_small_characterization(self, capsys):
        assert (
            main(
                [
                    "characterize",
                    "--preset",
                    "DDR4-2666",
                    "--channels",
                    "2",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "unloaded" in out
        assert "GB/s" in out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["characterize", "--preset", "DDR9"])


class TestParser:
    def test_command_required(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])
