"""Tests for Table I presets and synthetic curve generation."""

from __future__ import annotations

import pytest

from repro.core.metrics import compute_metrics
from repro.errors import ConfigurationError
from repro.platforms.presets import (
    AMD_ZEN2,
    NVIDIA_H100,
    TABLE_I_PLATFORMS,
    cxl_expander_family,
    family,
    platform,
    remote_socket_family,
)
from repro.platforms.spec import PlatformSpec, WaveformSpec
from repro.platforms.synthetic import synthesize_curve, synthesize_duplex_family


class TestTableICalibration:
    """The headline test: every Table I row is recovered within 1%."""

    @pytest.mark.parametrize(
        "spec", TABLE_I_PLATFORMS, ids=lambda s: s.vendor
    )
    def test_metrics_match_paper(self, spec):
        metrics = compute_metrics(family(spec))
        assert metrics.unloaded_latency_ns == pytest.approx(
            spec.unloaded_latency_ns, rel=0.01
        )
        assert metrics.max_latency_min_ns == pytest.approx(
            spec.max_latency_range_ns[0], rel=0.01
        )
        assert metrics.max_latency_max_ns == pytest.approx(
            spec.max_latency_range_ns[1], rel=0.01
        )
        assert metrics.saturated_bw_min_pct == pytest.approx(
            spec.saturated_bw_range_pct[0], rel=0.01
        )
        assert metrics.saturated_bw_max_pct == pytest.approx(
            spec.saturated_bw_range_pct[1], rel=0.01
        )

    def test_waveform_platforms_flagged(self):
        for spec in TABLE_I_PLATFORMS:
            metrics = compute_metrics(family(spec))
            if spec.waveform is not None:
                assert metrics.waveform_curves > 0
            else:
                assert metrics.waveform_curves == 0

    def test_write_impact_ordering_on_ddr(self):
        """On normal DDR platforms, 100%-read wins (Section III)."""
        for spec in TABLE_I_PLATFORMS:
            if spec.peak_profile is not None:
                continue  # Zen 2 breaks the pattern by design
            curves = family(spec)
            assert (
                curves[1.0].max_bandwidth_gbps
                > curves[0.5].max_bandwidth_gbps
            )

    def test_zen2_anomaly(self):
        """Zen 2: mixed traffic is the trough, not 50/50 (Section III)."""
        curves = family(AMD_ZEN2)
        peaks = {c.read_ratio: c.max_bandwidth_gbps for c in curves}
        trough_ratio = min(peaks, key=peaks.get)
        assert 0.5 < trough_ratio < 1.0
        assert peaks[0.5] > peaks[trough_ratio]

    def test_gpu_never_doubles_on_best_curve(self):
        """H100's 100%-read max latency is below 2x its unloaded."""
        curves = family(NVIDIA_H100)
        best = curves[1.0]
        assert best.max_latency_ns < 2 * best.unloaded_latency_ns

    def test_lookup_by_name(self):
        spec = platform("AMD Zen 2 EPYC 7742")
        assert spec is AMD_ZEN2
        with pytest.raises(ConfigurationError):
            platform("nonexistent")


class TestSpecValidation:
    def test_bad_latency_range(self):
        with pytest.raises(ConfigurationError):
            PlatformSpec(
                name="bad", vendor="x", released=2020, cores=1,
                frequency_ghz=1.0, memory="m", channels=1,
                theoretical_bw_gbps=100, unloaded_latency_ns=90,
                max_latency_range_ns=(300, 200),
                saturated_bw_range_pct=(70, 90),
                stream_range_pct=(50, 60),
            )

    def test_peak_profile_length_checked(self):
        with pytest.raises(ConfigurationError, match="peak_profile"):
            PlatformSpec(
                name="bad", vendor="x", released=2020, cores=1,
                frequency_ghz=1.0, memory="m", channels=1,
                theoretical_bw_gbps=100, unloaded_latency_ns=90,
                max_latency_range_ns=(200, 300),
                saturated_bw_range_pct=(70, 90),
                stream_range_pct=(50, 60),
                peak_profile=(0.5,),
            )

    def test_waveform_threshold(self):
        waveform = WaveformSpec(read_ratio_threshold=0.7)
        assert waveform.applies_to(0.5)
        assert not waveform.applies_to(0.9)

    def test_stream_bandwidth_range(self):
        spec = TABLE_I_PLATFORMS[0]
        lo, hi = spec.stream_bandwidth_range_gbps
        assert lo == pytest.approx(
            spec.theoretical_bw_gbps * spec.stream_range_pct[0] / 100
        )
        assert hi > lo


class TestSyntheticCurves:
    def test_curve_hits_requested_extremes(self):
        curve = synthesize_curve(
            read_ratio=1.0,
            unloaded_latency_ns=100.0,
            max_latency_ns=400.0,
            peak_bandwidth_gbps=120.0,
            onset_fraction_of_peak=0.8,
        )
        assert curve.unloaded_latency_ns == pytest.approx(100.0, rel=0.01)
        assert curve.max_latency_ns == pytest.approx(400.0, rel=0.01)
        assert curve.max_bandwidth_gbps == pytest.approx(120.0)

    def test_saturation_onset_placed(self):
        curve = synthesize_curve(
            read_ratio=1.0,
            unloaded_latency_ns=100.0,
            max_latency_ns=400.0,
            peak_bandwidth_gbps=100.0,
            onset_fraction_of_peak=0.8,
        )
        assert curve.saturation_bandwidth_gbps() == pytest.approx(80.0, rel=0.03)

    def test_waveform_tail_generated(self):
        curve = synthesize_curve(
            read_ratio=0.5,
            unloaded_latency_ns=100.0,
            max_latency_ns=400.0,
            peak_bandwidth_gbps=100.0,
            onset_fraction_of_peak=0.8,
            waveform_depth=0.06,
            waveform_points=4,
        )
        assert curve.has_waveform()
        assert curve.max_latency_ns == pytest.approx(400.0, rel=0.01)


class TestDuplexFamilies:
    def test_cxl_best_at_balance(self):
        curves = cxl_expander_family()
        peaks = {c.read_ratio: c.max_bandwidth_gbps for c in curves}
        assert peaks[0.5] > peaks[0.0]
        assert peaks[0.5] > peaks[1.0]

    def test_remote_socket_latency_premium(self):
        cxl = cxl_expander_family()
        remote = remote_socket_family()
        premium = remote.latency_at(2.0, 0.9) - cxl.latency_at(2.0, 0.9)
        assert premium == pytest.approx(28.0, abs=8.0)

    def test_remote_socket_higher_ceiling(self):
        assert (
            remote_socket_family().max_bandwidth_gbps
            > cxl_expander_family().max_bandwidth_gbps
        )

    def test_duplex_validation(self):
        with pytest.raises(ConfigurationError):
            synthesize_duplex_family(
                name="bad",
                read_link_gbps=0,
                write_link_gbps=1,
                unloaded_latency_ns=100,
                max_latency_ns=300,
            )
