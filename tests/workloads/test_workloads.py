"""Tests for the evaluation workloads."""

from __future__ import annotations


import pytest

from repro.cpu.system import System
from repro.dram.timing import DDR4_2666
from repro.errors import ConfigurationError
from repro.memmodels.cycle_accurate import CycleAccurateModel
from repro.memmodels.fixed import FixedLatencyModel
from repro.workloads.base import simulation_error_pct
from repro.workloads.gups import GupsWorkload, gups_ops
from repro.workloads.hpcg import HpcgPhaseProfile, HpcgProxy, PhaseSegment
from repro.workloads.lmbench import LmbenchLatency, latency_vs_working_set
from repro.workloads.multichase import Multichase
from repro.workloads.stream import StreamWorkload, best_stream_bandwidth


def make_system(config):
    return System(config, FixedLatencyModel(latency_ns=60.0))


class TestStream:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamWorkload(kernel="sort")

    def test_score_is_app_level_bandwidth(self, tiny_system_config):
        system = make_system(tiny_system_config)
        workload = StreamWorkload(kernel="copy", lines_per_core=400)
        score = workload.run(system)
        assert score > 0

    def test_add_moves_more_app_bytes_than_copy(self, tiny_system_config):
        copy_system = make_system(tiny_system_config)
        add_system = make_system(tiny_system_config)
        copy_score = StreamWorkload(kernel="copy", lines_per_core=400).run(
            copy_system
        )
        add_score = StreamWorkload(kernel="add", lines_per_core=400).run(
            add_system
        )
        # add reads two arrays per element: more app bytes per unit time
        assert add_score > copy_score * 0.8

    def test_mess_sees_more_traffic_than_stream_reports(
        self, tiny_system_config
    ):
        """Section III: hardware counters vs STREAM's assumed bytes."""
        system = System(
            tiny_system_config, CycleAccurateModel(DDR4_2666, channels=2)
        )
        workload = StreamWorkload(kernel="copy", lines_per_core=1500)
        workload.attach(system)
        system.hierarchy.prime_write_steady_state(dirty_fraction=0.5)
        result = system.run()
        stream_bw = workload.score(result)
        # architecture-level traffic includes the RFO for every store
        assert result.memory_bandwidth_gbps > stream_bw

    def test_best_stream_bandwidth_runs_all_kernels(self, tiny_system_config):
        results = best_stream_bandwidth(
            lambda: make_system(tiny_system_config), lines_per_core=200
        )
        assert set(results) == {"copy", "scale", "add", "triad"}


class TestLatencyBenchmarks:
    def test_lmbench_measures_unloaded_latency(self, tiny_system_config):
        system = make_system(tiny_system_config)
        latency = LmbenchLatency(chase_ops=300).run(system)
        # fixed 60 ns + full hierarchy path 69.5 ns
        assert latency == pytest.approx(129.5, rel=0.02)

    def test_lat_mem_rd_staircase(self, tiny_system_config):
        results = latency_vs_working_set(
            lambda: make_system(tiny_system_config),
            sizes_bytes=(4 * 1024, 4 * 1024 * 1024),
            chase_ops=400,
        )
        assert results[4 * 1024] < results[4 * 1024 * 1024]

    def test_multichase_parallel(self, tiny_system_config):
        system = make_system(tiny_system_config)
        latency = Multichase(chase_ops=200, parallel_chases=2).run(system)
        assert latency > 0

    def test_multichase_too_many_chases(self, tiny_system_config):
        system = make_system(tiny_system_config)
        workload = Multichase(parallel_chases=99)
        with pytest.raises(ConfigurationError):
            workload.attach(system)


class TestGups:
    def test_updates_are_load_plus_store(self):
        ops = list(gups_ops(1 << 20, max_updates=10))
        assert len(ops) == 20
        loads = ops[0::2]
        stores = ops[1::2]
        assert all(not op.is_store for op in loads)
        assert all(op.is_store for op in stores)
        assert all(a.address == b.address for a, b in zip(loads, stores))

    def test_workload_scores_update_rate(self, tiny_system_config):
        system = make_system(tiny_system_config)
        score = GupsWorkload(updates_per_core=100).run(system)
        assert score > 0

    def test_table_too_small(self):
        with pytest.raises(ConfigurationError):
            list(gups_ops(16, max_updates=1))


class TestHpcg:
    def test_phase_profile_timeline(self):
        profile = HpcgPhaseProfile(iterations=2)
        segments = list(profile.timeline())
        assert len(segments) == 2 * len(profile.segments)
        starts = [start for start, _ in segments]
        assert starts == sorted(starts)
        assert profile.duration_ms == pytest.approx(
            2 * sum(s.duration_ms for s in profile.segments)
        )

    def test_segment_validation(self):
        with pytest.raises(ConfigurationError):
            PhaseSegment("bad", duration_ms=0, bandwidth_fraction=0.5, read_ratio=0.8)

    def test_proxy_runs(self, tiny_system_config):
        system = make_system(tiny_system_config)
        score = HpcgProxy(lines_per_core=300).run(system)
        assert score > 0


class TestErrorMetric:
    def test_simulation_error(self):
        assert simulation_error_pct(110, 100) == pytest.approx(10.0)
        assert simulation_error_pct(90, 100) == pytest.approx(10.0)

    def test_zero_actual(self):
        with pytest.raises(ZeroDivisionError):
            simulation_error_pct(1, 0)
