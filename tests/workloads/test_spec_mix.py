"""Tests for the SPEC profiles and the analytic runtime model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.platforms.presets import cxl_expander_family, remote_socket_family
from repro.workloads.spec_mix import (
    SPEC_CPU2006,
    AppProfile,
    estimate_time_per_access,
    performance_delta_pct,
)


class TestProfiles:
    def test_full_suite_present(self):
        assert len(SPEC_CPU2006) == 29
        names = {p.name for p in SPEC_CPU2006}
        assert {"perlbench", "lbm", "mcf", "libquantum"} <= names

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AppProfile(name="bad", gap_ns=-1, mlp=2, read_ratio=0.8)
        with pytest.raises(ConfigurationError):
            AppProfile(name="bad", gap_ns=1, mlp=0.5, read_ratio=0.8)


class TestFixedPoint:
    def test_converges_and_is_stable(self, small_family):
        profile = AppProfile(name="t", gap_ns=5.0, mlp=2.0, read_ratio=0.9)
        t1, bw1 = estimate_time_per_access(profile, small_family)
        t2, bw2 = estimate_time_per_access(
            profile, small_family, iterations=120
        )
        assert t1 == pytest.approx(t2, rel=0.02)
        assert bw1 == pytest.approx(bw2, rel=0.02)

    def test_result_self_consistent(self, small_family):
        profile = AppProfile(name="t", gap_ns=5.0, mlp=2.0, read_ratio=0.9)
        time_per_access, bandwidth = estimate_time_per_access(
            profile, small_family
        )
        latency = small_family.latency_at(bandwidth, profile.read_ratio)
        assert time_per_access == pytest.approx(
            profile.gap_ns + latency / profile.mlp, rel=0.05
        )
        assert bandwidth == pytest.approx(
            profile.threads * 64 / time_per_access, rel=0.05
        )

    def test_compute_bound_profile_barely_loads_memory(self, small_family):
        profile = AppProfile(name="t", gap_ns=500.0, mlp=1.2, read_ratio=0.95)
        _, bandwidth = estimate_time_per_access(profile, small_family)
        assert bandwidth < 0.1 * small_family.max_bandwidth_gbps

    def test_memory_bound_profile_saturates(self, small_family):
        profile = AppProfile(name="t", gap_ns=0.5, mlp=16.0, read_ratio=1.0)
        _, bandwidth = estimate_time_per_access(profile, small_family)
        assert bandwidth > 0.8 * small_family[1.0].max_bandwidth_gbps

    def test_validation(self, small_family):
        profile = AppProfile(name="t", gap_ns=1, mlp=2, read_ratio=0.8)
        with pytest.raises(ConfigurationError):
            estimate_time_per_access(profile, small_family, iterations=0)
        with pytest.raises(ConfigurationError):
            estimate_time_per_access(profile, small_family, damping=0)


class TestFigure18Shape:
    def test_low_bandwidth_workloads_prefer_cxl(self):
        cxl = cxl_expander_family()
        remote = remote_socket_family()
        delta = performance_delta_pct(
            next(p for p in SPEC_CPU2006 if p.name == "perlbench"),
            cxl,
            remote,
        )
        assert delta < 0

    def test_high_bandwidth_workloads_prefer_remote(self):
        cxl = cxl_expander_family()
        remote = remote_socket_family()
        delta = performance_delta_pct(
            next(p for p in SPEC_CPU2006 if p.name == "libquantum"),
            cxl,
            remote,
        )
        assert delta > 10

    def test_deltas_trend_upward_with_utilization(self):
        cxl = cxl_expander_family()
        remote = remote_socket_family()
        rows = []
        for profile in SPEC_CPU2006:
            _, bandwidth = estimate_time_per_access(profile, cxl)
            rows.append(
                (bandwidth, performance_delta_pct(profile, cxl, remote))
            )
        rows.sort()
        low_third = [delta for _, delta in rows[:10]]
        high_third = [delta for _, delta in rows[-10:]]
        assert max(low_third) < min(high_third)
