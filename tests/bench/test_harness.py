"""Integration tests for the full-system Mess benchmark harness."""

from __future__ import annotations

import pytest

from repro.bench.harness import MessBenchmark, MessBenchmarkConfig
from repro.errors import BenchmarkError
from repro.memmodels.fixed import FixedLatencyModel
from repro.memmodels.cycle_accurate import CycleAccurateModel
from repro.dram.timing import DDR4_2666
from repro.runner import cache as result_cache
from repro.runner.cache import ResultCache

# The harness's own tests exercise MessBenchmark directly on purpose;
# the deprecation test below still sees the warning via pytest.warns.
pytestmark = pytest.mark.filterwarnings(
    "ignore:constructing MessBenchmark directly:DeprecationWarning"
)


@pytest.fixture
def tiny_sweep():
    return MessBenchmarkConfig(
        store_fractions=(0.0, 1.0),
        nop_counts=(0, 200),
        warmup_ns=1500.0,
        measure_ns=4000.0,
        chase_array_bytes=4 * 1024 * 1024,
        traffic_array_bytes=2 * 1024 * 1024,
    )


@pytest.fixture
def bench(tiny_system_config, tiny_sweep):
    return MessBenchmark(
        system_config=tiny_system_config,
        memory_factory=lambda: CycleAccurateModel(DDR4_2666, channels=2),
        config=tiny_sweep,
        name="tiny",
        theoretical_bandwidth_gbps=2 * DDR4_2666.channel_peak_gbps,
    )


class TestConfigValidation:
    def test_empty_sweeps_rejected(self):
        with pytest.raises(BenchmarkError):
            MessBenchmarkConfig(store_fractions=(), nop_counts=(0,))

    def test_invalid_windows_rejected(self):
        with pytest.raises(BenchmarkError):
            MessBenchmarkConfig(measure_ns=0)


class TestCharacterization:
    def test_produces_family_with_requested_ratios(self, bench):
        family = bench.run()
        assert family.read_ratios == [0.5, 1.0]
        assert family.name == "tiny"
        assert family.theoretical_bandwidth_gbps == pytest.approx(42.656)

    def test_pressure_orders_points(self, bench):
        family = bench.run()
        for curve in family:
            # lower pressure (more nops) comes first and achieves less
            # bandwidth than full pressure
            assert curve.bandwidth_gbps[0] < curve.bandwidth_gbps[-1]

    def test_measured_write_allocate_ratio(self, bench):
        bench.run()
        full_store_points = [
            p for p in bench.points if p.store_fraction == 1.0 and p.nop_count == 0
        ]
        assert full_store_points[0].measured_read_ratio == pytest.approx(
            0.5, abs=0.05
        )

    def test_pure_load_ratio(self, bench):
        bench.run()
        read_points = [p for p in bench.points if p.store_fraction == 0.0]
        assert all(
            p.measured_read_ratio == pytest.approx(1.0, abs=0.01)
            for p in read_points
        )

    def test_latency_rises_with_pressure(self, bench):
        family = bench.run()
        curve = family[1.0]
        assert curve.latency_ns[-1] >= curve.latency_ns[0]

    def test_no_progress_raises(self, tiny_system_config):
        config = MessBenchmarkConfig(
            store_fractions=(0.0,),
            nop_counts=(0,),
            warmup_ns=1.0,
            measure_ns=0.5,  # far too short for a single chase load
            chase_array_bytes=4 * 1024 * 1024,
            traffic_array_bytes=2 * 1024 * 1024,
        )
        bench = MessBenchmark(
            system_config=tiny_system_config,
            memory_factory=lambda: FixedLatencyModel(latency_ns=100.0),
            config=config,
        )
        with pytest.raises(BenchmarkError, match="no progress"):
            bench.run()


class TestCharacterizationCache:
    """The content-addressed disk cache behind ``cache_key``."""

    def _cached_bench(self, tiny_system_config, tiny_sweep):
        return MessBenchmark(
            system_config=tiny_system_config,
            memory_factory=lambda: FixedLatencyModel(latency_ns=95.0),
            config=tiny_sweep,
            name="tiny-cached",
            theoretical_bandwidth_gbps=40.0,
            cache_key="tiny-fixed",
        )

    def test_no_cache_without_activation(self, tiny_system_config, tiny_sweep, tmp_path):
        bench = self._cached_bench(tiny_system_config, tiny_sweep)
        bench.run()
        assert list(ResultCache(tmp_path / "c").entries()) == []

    def test_hit_restores_family_and_points(self, tiny_system_config, tiny_sweep, tmp_path):
        cache = result_cache.activate(ResultCache(tmp_path / "c"))
        try:
            first = self._cached_bench(tiny_system_config, tiny_sweep)
            family = first.run()
            assert cache.info()["kinds"] == {"characterization": 1}
            second = self._cached_bench(tiny_system_config, tiny_sweep)
            cached = second.run()
            assert cache.hits == 1
            assert cached.to_dict() == family.to_dict()
            assert [vars(p) for p in second.points] == [vars(p) for p in first.points]
        finally:
            result_cache.deactivate()

    def test_no_cache_key_never_touches_cache(self, bench, tmp_path):
        cache = result_cache.activate(ResultCache(tmp_path / "c"))
        try:
            bench.run()
            assert cache.info()["entries"] == 0
        finally:
            result_cache.deactivate()

    def test_config_change_misses(self, tiny_system_config, tiny_sweep, tmp_path):
        cache = result_cache.activate(ResultCache(tmp_path / "c"))
        try:
            self._cached_bench(tiny_system_config, tiny_sweep).run()
            other_sweep = MessBenchmarkConfig(
                store_fractions=(0.0, 1.0),
                nop_counts=(0, 400),
                warmup_ns=1500.0,
                measure_ns=4000.0,
                chase_array_bytes=4 * 1024 * 1024,
                traffic_array_bytes=2 * 1024 * 1024,
            )
            self._cached_bench(tiny_system_config, other_sweep).run()
            assert cache.hits == 0
            assert cache.info()["kinds"] == {"characterization": 2}
        finally:
            result_cache.deactivate()

    def test_wrong_shaped_entry_is_recomputed(self, tiny_system_config, tiny_sweep, tmp_path):
        cache = result_cache.activate(ResultCache(tmp_path / "c"))
        try:
            bench = self._cached_bench(tiny_system_config, tiny_sweep)
            family = bench.run()
            key = bench._cache_digest(cache)
            # a well-formed JSON entry with the wrong payload shape
            cache.put(key, {"unexpected": True}, kind="characterization")
            again = self._cached_bench(tiny_system_config, tiny_sweep)
            recomputed = again.run()
            assert recomputed.to_dict() == family.to_dict()
        finally:
            result_cache.deactivate()


class TestConstructionDeprecation:
    def test_direct_construction_warns(self, tiny_system_config, tiny_sweep):
        with pytest.warns(DeprecationWarning, match="Scenario.materialize"):
            MessBenchmark(
                system_config=tiny_system_config,
                memory_factory=lambda: FixedLatencyModel(50.0),
                config=tiny_sweep,
            )

    def test_scenario_route_is_silent(self):
        import warnings

        from repro.scenario import Scenario

        scenario = Scenario.for_experiment("fig17")
        materialized = Scenario(
            name="t",
            memory={"kind": "fixed-latency", "params": {"latency_ns": 50.0}},
        ).materialize()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            materialized.benchmark()
        del scenario
