"""The perf-bench harness: registry, timing contract, payload schema."""

from __future__ import annotations

import pytest

from repro.bench import perf
from repro.errors import BenchmarkError, ConfigurationError
from repro.experiments.base import ExperimentResult


def _constant_spec(name="t.constant", payload="same"):
    def make():
        def work(engine):
            return payload

        def summarize(result):
            return {"digest": result}

        return work, summarize

    return perf.BenchSpec(name=name, tags=("t",), make=make)


class TestRunBench:
    def test_times_both_engines_and_reports_speedup(self):
        entry = perf.run_bench(_constant_spec())
        assert set(entry["engine_times_s"]) == {"reference", "vectorized"}
        assert entry["meta"]["digests_match"] is True
        assert "speedup" in entry

    def test_single_engine_has_no_speedup(self):
        entry = perf.run_bench(_constant_spec(), engines=("reference",))
        assert "speedup" not in entry
        assert list(entry["engine_times_s"]) == ["reference"]

    def test_digest_mismatch_raises(self):
        def make():
            def work(engine):
                return engine  # engine-dependent result: a real bug

            def summarize(result):
                return {"digest": result}

            return work, summarize

        spec = perf.BenchSpec(name="t.mismatch", tags=(), make=make)
        with pytest.raises(BenchmarkError, match="disagree"):
            perf.run_bench(spec)

    def test_rejects_bad_repeat_and_engine(self):
        with pytest.raises(ConfigurationError):
            perf.run_bench(_constant_spec(), repeat=0)
        with pytest.raises(ConfigurationError):
            perf.run_bench(_constant_spec(), engines=("turbo",))


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        name = "t.duplicate"
        perf.register(name, "t")(lambda: None)
        try:
            with pytest.raises(ConfigurationError, match="duplicate"):
                perf.register(name)(lambda: None)
        finally:
            del perf._REGISTRY[name]

    def test_bench_names_filters_by_substring_and_tag(self):
        names = perf.bench_names()
        assert "curves.family_interpolation" in names
        assert "experiment.fig2" in names
        assert perf.bench_names("curves") == [
            name
            for name in names
            if "curves" in name or "curves" in perf._REGISTRY[name].tags
        ]
        assert "experiment.fig10" in perf.bench_names("fig10")

    def test_run_benches_rejects_empty_filter(self):
        with pytest.raises(ConfigurationError, match="no benches match"):
            perf.run_benches(filter="no-such-bench")

    def test_experiment_bench_scale_override(self):
        spec = perf.experiment_bench("fig17", scale=0.5)
        work, summarize = spec.make()
        result = work("reference")
        meta = summarize(result)
        assert meta["scale"] == 0.5
        assert meta["rows"] == len(result.rows)


class TestPayload:
    def test_write_payload_round_trips(self, tmp_path):
        import json

        payload = {
            perf.FORMAT_KEY: perf.FORMAT_VERSION,
            "benches": [perf.run_bench(_constant_spec())],
        }
        out = tmp_path / "bench.json"
        perf.write_payload(payload, out)
        again = json.loads(out.read_text())
        assert again[perf.FORMAT_KEY] == perf.FORMAT_VERSION
        assert again["benches"][0]["name"] == "t.constant"

    def test_min_speedup_selects_tag(self):
        payload = {
            "benches": [
                {"speedup": 12.0, "tags": ["curves"]},
                {"speedup": 3.0, "tags": ["probe"]},
                {"tags": ["curves"]},  # no speedup: single-engine entry
            ]
        }
        assert perf.min_speedup(payload) == 3.0
        assert perf.min_speedup(payload, tag="curves") == 12.0
        assert perf.min_speedup({"benches": []}) is None


class TestDeterministicDigest:
    def _result(self, wall_time):
        result = ExperimentResult(
            experiment_id="fig11",
            title="t",
            columns=["model", "wall_time_s"],
        )
        result.add(model="fixed", wall_time_s=wall_time)
        result.note(f"wall time {wall_time:.2f}s")
        return result

    def test_ignores_declared_wall_time_columns_and_notes(self):
        assert perf.deterministic_digest(
            self._result(1.0)
        ) == perf.deterministic_digest(self._result(2.0))

    def test_plain_digest_for_other_experiments(self):
        result = ExperimentResult(
            experiment_id="fig2", title="t", columns=["x"]
        )
        result.add(x=1.0)
        assert perf.deterministic_digest(result) == result.digest()
