"""Unit tests for the pointer-chase latency probe."""

from __future__ import annotations

import itertools

import pytest

from repro.bench.pointer_chase import pointer_chase_ops
from repro.cpu.core import MemOp
from repro.errors import BenchmarkError
from repro.units import CACHE_LINE_BYTES


class TestPointerChase:
    def test_all_ops_are_dependent_loads(self):
        ops = list(pointer_chase_ops(1 << 20, max_ops=50))
        assert len(ops) == 50
        assert all(isinstance(op, MemOp) for op in ops)
        assert all(op.dependent and not op.is_store for op in ops)

    def test_addresses_within_array(self):
        array_bytes = 1 << 16
        base = 1 << 30
        ops = list(pointer_chase_ops(array_bytes, base_address=base, max_ops=200))
        for op in ops:
            assert base <= op.address < base + array_bytes
            assert (op.address - base) % CACHE_LINE_BYTES == 0

    def test_random_traversal_defeats_streak_detection(self):
        ops = list(pointer_chase_ops(8 << 20, max_ops=500))
        lines = [op.address // CACHE_LINE_BYTES for op in ops]
        sequential = sum(
            1 for a, b in zip(lines, lines[1:]) if b == a + 1
        )
        assert sequential < 10

    def test_deterministic_by_seed(self):
        a = [op.address for op in pointer_chase_ops(1 << 20, seed=3, max_ops=50)]
        b = [op.address for op in pointer_chase_ops(1 << 20, seed=3, max_ops=50)]
        c = [op.address for op in pointer_chase_ops(1 << 20, seed=4, max_ops=50)]
        assert a == b
        assert a != c

    def test_infinite_stream_without_max(self):
        stream = pointer_chase_ops(1 << 20)
        taken = list(itertools.islice(stream, 10_000))
        assert len(taken) == 10_000

    def test_tiny_array_rejected(self):
        with pytest.raises(BenchmarkError):
            list(pointer_chase_ops(32, max_ops=1))
