"""Unit tests for the traffic generator and the write-allocate math."""

from __future__ import annotations

import itertools

import pytest

from repro.bench.traffic_gen import (
    TrafficGenConfig,
    read_ratio_for_store_fraction,
    store_fraction_for_read_ratio,
    traffic_gen_ops,
)
from repro.cpu.core import Delay, MemOp
from repro.errors import BenchmarkError


class TestWriteAllocateMath:
    @pytest.mark.parametrize(
        "store_fraction,expected",
        [(0.0, 1.0), (1.0, 0.5), (0.5, 2 / 3), (0.25, 0.8)],
    )
    def test_read_ratio(self, store_fraction, expected):
        assert read_ratio_for_store_fraction(store_fraction) == pytest.approx(
            expected
        )

    @pytest.mark.parametrize("store_fraction", [0.0, 0.3, 0.7, 1.0])
    def test_roundtrip(self, store_fraction):
        ratio = read_ratio_for_store_fraction(store_fraction)
        assert store_fraction_for_read_ratio(ratio) == pytest.approx(
            store_fraction
        )

    def test_out_of_range(self):
        with pytest.raises(BenchmarkError):
            read_ratio_for_store_fraction(1.5)
        with pytest.raises(BenchmarkError):
            store_fraction_for_read_ratio(0.3)


class TestConfig:
    def test_pause_scales_with_nops(self):
        config = TrafficGenConfig(store_fraction=0.0, nop_count=100)
        assert config.pause_ns == pytest.approx(100 * config.ns_per_nop)

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            TrafficGenConfig(store_fraction=2.0, nop_count=0)
        with pytest.raises(BenchmarkError):
            TrafficGenConfig(store_fraction=0.5, nop_count=-1)
        with pytest.raises(BenchmarkError):
            TrafficGenConfig(store_fraction=0.5, nop_count=0, ops_per_burst=0)


class TestStream:
    def take(self, config, n, **kwargs):
        stream = traffic_gen_ops(config, load_base=0, store_base=1 << 30, **kwargs)
        return list(itertools.islice(stream, n))

    def test_store_fraction_exact_per_burst(self):
        config = TrafficGenConfig(store_fraction=0.5, nop_count=0, ops_per_burst=16)
        ops = self.take(config, 16)
        stores = sum(1 for op in ops if isinstance(op, MemOp) and op.is_store)
        assert stores == 8

    def test_pure_loads(self):
        config = TrafficGenConfig(store_fraction=0.0, nop_count=0)
        ops = self.take(config, 32)
        assert all(isinstance(op, MemOp) and not op.is_store for op in ops)

    def test_pure_stores(self):
        config = TrafficGenConfig(store_fraction=1.0, nop_count=0)
        ops = self.take(config, 32)
        assert all(isinstance(op, MemOp) and op.is_store for op in ops)

    def test_pause_follows_each_burst(self):
        config = TrafficGenConfig(store_fraction=0.0, nop_count=10, ops_per_burst=4)
        ops = self.take(config, 10)
        assert isinstance(ops[4], Delay)
        assert ops[4].ns == pytest.approx(config.pause_ns)

    def test_addresses_sequential_and_separate(self):
        config = TrafficGenConfig(store_fraction=0.5, nop_count=0, ops_per_burst=8)
        ops = self.take(config, 16)
        loads = [op.address for op in ops if not op.is_store]
        stores = [op.address for op in ops if op.is_store]
        assert loads == sorted(loads)
        assert all(address >= (1 << 30) for address in stores)
        # consecutive lines, 64 bytes apart
        assert loads[1] - loads[0] == 64

    def test_wraps_at_array_size(self):
        config = TrafficGenConfig(
            store_fraction=0.0, nop_count=0, array_bytes=4 * 64, ops_per_burst=4
        )
        ops = self.take(config, 8)
        assert ops[4].address == ops[0].address

    def test_initial_delay_phase_shift(self):
        config = TrafficGenConfig(store_fraction=0.0, nop_count=5)
        ops = self.take(config, 1, initial_delay_ns=123.0)
        assert isinstance(ops[0], Delay)
        assert ops[0].ns == 123.0

    def test_ops_are_independent(self):
        config = TrafficGenConfig(store_fraction=0.5, nop_count=0)
        ops = self.take(config, 16)
        assert all(not op.dependent for op in ops if isinstance(op, MemOp))
