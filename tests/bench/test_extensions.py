"""Tests for the benchmark extensions: streaming stores and strides.

The paper's footnote 1 (x86 non-temporal stores opening the sub-50%-read
traffic space) and Section IV-D's strided access pattern.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.harness import MessBenchmark, MessBenchmarkConfig
from repro.bench.traffic_gen import (
    TrafficGenConfig,
    read_ratio_for_store_fraction,
    traffic_gen_ops,
)
from repro.cpu.core import MemOp
from repro.cpu.system import System
from repro.dram.timing import DDR4_2666

# These tests exercise the harness internals on purpose; the scenario
# route is covered by tests/engine and tests/bench/test_harness.py.
pytestmark = pytest.mark.filterwarnings(
    "ignore:constructing MessBenchmark directly:DeprecationWarning"
)
from repro.errors import BenchmarkError
from repro.memmodels.cycle_accurate import CycleAccurateModel


class TestNonTemporalMath:
    @pytest.mark.parametrize(
        "store_fraction,expected", [(0.0, 1.0), (0.5, 0.5), (1.0, 0.0)]
    )
    def test_nt_ratio(self, store_fraction, expected):
        assert read_ratio_for_store_fraction(
            store_fraction, non_temporal=True
        ) == pytest.approx(expected)

    def test_nt_reaches_below_write_allocate_floor(self):
        nt = read_ratio_for_store_fraction(1.0, non_temporal=True)
        wa = read_ratio_for_store_fraction(1.0, non_temporal=False)
        assert nt == 0.0
        assert wa == 0.5


class TestNonTemporalOps:
    def test_stores_flagged_non_temporal(self):
        config = TrafficGenConfig(
            store_fraction=1.0, nop_count=0, non_temporal_stores=True
        )
        ops = list(itertools.islice(traffic_gen_ops(config, 0, 1 << 30), 8))
        assert all(op.non_temporal for op in ops)

    def test_loads_never_flagged(self):
        config = TrafficGenConfig(
            store_fraction=0.5, nop_count=0, non_temporal_stores=True
        )
        ops = list(itertools.islice(traffic_gen_ops(config, 0, 1 << 30), 16))
        loads = [op for op in ops if not op.is_store]
        assert loads and all(not op.non_temporal for op in loads)

    def test_nt_store_bypasses_caches(self, tiny_system_config):
        system = System(
            tiny_system_config, CycleAccurateModel(DDR4_2666, channels=2)
        )
        ops = iter([MemOp(0, is_store=True, non_temporal=True)])
        system.add_workload(0, ops)
        result = system.run()
        # one memory WRITE, no read-for-ownership, nothing cached
        assert result.memory_writes == 1
        assert result.memory_reads == 0
        assert not system.hierarchy.l3.contains(0)

    def test_nt_benchmark_measures_pure_write_traffic(self, tiny_system_config):
        config = MessBenchmarkConfig(
            store_fractions=(1.0,),
            nop_counts=(0,),
            warmup_ns=1500.0,
            measure_ns=4000.0,
            chase_array_bytes=4 * 1024 * 1024,
            traffic_array_bytes=2 * 1024 * 1024,
            non_temporal_stores=True,
        )
        bench = MessBenchmark(
            system_config=tiny_system_config,
            memory_factory=lambda: CycleAccurateModel(DDR4_2666, channels=2),
            config=config,
        )
        family = bench.run()
        assert family.read_ratios == [0.0]
        assert bench.points[0].measured_read_ratio < 0.05


class TestStride:
    def test_stride_spaces_addresses(self):
        config = TrafficGenConfig(
            store_fraction=0.0, nop_count=0, stride_lines=128
        )
        ops = list(itertools.islice(traffic_gen_ops(config, 0, 1 << 30), 3))
        assert ops[1].address - ops[0].address == 128 * 64

    def test_row_stride_degrades_row_locality(self):
        """Section IV-D: a new-row-per-access stride thrashes buffers."""

        def hit_rate(stride):
            model = CycleAccurateModel(
                DDR4_2666, channels=1, interleave_bytes=64
            )
            config = TrafficGenConfig(
                store_fraction=0.0, nop_count=0, stride_lines=stride
            )
            ops = traffic_gen_ops(config, 0, 1 << 30)
            from repro.request import AccessType, MemoryRequest

            for index, op in enumerate(itertools.islice(ops, 2000)):
                model.access(
                    MemoryRequest(op.address, AccessType.READ, index * 2.0)
                )
            return model.row_buffer_stats().rates()[0]

        lines_per_row = DDR4_2666.row_bytes // 64
        assert hit_rate(1) > hit_rate(lines_per_row) + 0.3

    def test_invalid_stride(self):
        with pytest.raises(BenchmarkError):
            TrafficGenConfig(store_fraction=0.0, nop_count=0, stride_lines=0)
