"""Unit tests for the direct model probe."""

from __future__ import annotations

import pytest

from repro.bench.model_probe import ProbeConfig, characterize_model, probe_point
from repro.errors import BenchmarkError
from repro.memmodels.fixed import FixedLatencyModel
from repro.memmodels.md1 import MD1QueueModel


@pytest.fixture
def quick_config():
    return ProbeConfig(
        read_ratios=(0.5, 1.0),
        gaps_ns=(0.5, 2.0, 10.0),
        ops_per_point=1500,
        warmup_ops=200,
    )


class TestConfigValidation:
    def test_empty_sweeps(self):
        with pytest.raises(BenchmarkError):
            ProbeConfig(read_ratios=())

    def test_bad_ratio(self):
        with pytest.raises(BenchmarkError):
            ProbeConfig(read_ratios=(1.5,))

    def test_bad_gap(self):
        with pytest.raises(BenchmarkError):
            ProbeConfig(gaps_ns=(0.0,))

    def test_warmup_must_be_smaller(self):
        with pytest.raises(BenchmarkError):
            ProbeConfig(ops_per_point=100, warmup_ops=100)


class TestProbePoint:
    def test_fixed_model_measures_its_latency(self, quick_config):
        point = probe_point(
            FixedLatencyModel(latency_ns=77.0), 1.0, 10.0, quick_config
        )
        assert point.read_latency_ns == pytest.approx(77.0)

    def test_bandwidth_tracks_offered_rate_below_capacity(self, quick_config):
        point = probe_point(
            FixedLatencyModel(latency_ns=20.0), 1.0, 10.0, quick_config
        )
        # 64 bytes every 10 ns = 6.4 GB/s
        assert point.bandwidth_gbps == pytest.approx(6.4, rel=0.1)

    def test_ratio_recorded(self, quick_config):
        point = probe_point(
            FixedLatencyModel(), 0.5, 5.0, quick_config
        )
        assert point.read_ratio == 0.5


class TestCharacterize:
    def test_family_shape(self, quick_config):
        family = characterize_model(
            FixedLatencyModel,
            quick_config,
            name="probe-test",
            theoretical_bandwidth_gbps=99.0,
        )
        assert family.read_ratios == [0.5, 1.0]
        assert len(family[1.0]) == 3
        assert family.name == "probe-test"
        assert family.theoretical_bandwidth_gbps == 99.0

    def test_loaded_model_shows_rising_curve(self, quick_config):
        family = characterize_model(
            lambda: MD1QueueModel(
                unloaded_latency_ns=30.0, peak_bandwidth_gbps=40.0
            ),
            quick_config,
        )
        curve = family[1.0]
        assert curve.latency_ns[-1] > curve.latency_ns[0]

    def test_fresh_model_per_point(self, quick_config):
        instances = []

        def factory():
            model = FixedLatencyModel()
            instances.append(model)
            return model

        characterize_model(factory, quick_config)
        assert len(instances) == 2 * 3  # ratios x gaps
