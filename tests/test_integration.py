"""End-to-end integration: the full Mess workflow on a tiny platform.

The quickstart pipeline as a test: characterize a cycle-level memory
system, derive metrics, serialize the curves, feed them to the Mess
simulator, and verify the simulated machine behaves like the measured
one — the framework's central claim, at test scale.
"""

from __future__ import annotations

import pytest

from repro import (
    CurveFamily,
    MessBenchmark,
    MessBenchmarkConfig,
    MessMemorySimulator,
    compute_metrics,
)
from repro.cpu import System
from repro.dram import DDR4_2666
from repro.memmodels import CycleAccurateModel
from repro.workloads import LmbenchLatency, StreamWorkload

# These tests exercise the harness internals on purpose; the scenario
# route is covered by tests/engine and tests/bench/test_harness.py.
pytestmark = pytest.mark.filterwarnings(
    "ignore:constructing MessBenchmark directly:DeprecationWarning"
)


@pytest.fixture(scope="module")
def measured(tiny_system_config_module):
    bench = MessBenchmark(
        system_config=tiny_system_config_module,
        memory_factory=lambda: CycleAccurateModel(
            DDR4_2666, channels=2, write_queue_depth=48
        ),
        config=MessBenchmarkConfig(
            store_fractions=(0.0, 1.0),
            nop_counts=(0, 150, 1000),
            warmup_ns=2500.0,
            measure_ns=6000.0,
            chase_array_bytes=4 * 1024 * 1024,
            traffic_array_bytes=2 * 1024 * 1024,
        ),
        name="integration",
        theoretical_bandwidth_gbps=2 * DDR4_2666.channel_peak_gbps,
    )
    return bench, bench.run()


@pytest.fixture(scope="module")
def tiny_system_config_module():
    from repro.cpu import CacheConfig, HierarchyConfig, SystemConfig

    return SystemConfig(
        cores=4,
        hierarchy=HierarchyConfig(
            l1=CacheConfig(8 * 1024, 4, 1.5),
            l2=CacheConfig(32 * 1024, 4, 5.0),
            l3=CacheConfig(128 * 1024, 8, 18.0),
            noc_latency_ns=45.0,
        ),
        mshrs=8,
    )


class TestEndToEnd:
    def test_characterization_produces_sane_family(self, measured):
        _, family = measured
        metrics = compute_metrics(family)
        assert 80 < metrics.unloaded_latency_ns < 250
        assert metrics.max_latency_max_ns > metrics.unloaded_latency_ns
        assert 0 < family.max_bandwidth_gbps <= 2 * DDR4_2666.channel_peak_gbps

    def test_family_roundtrips_through_disk(self, measured, tmp_path):
        _, family = measured
        path = tmp_path / "family.json"
        family.to_json(path)
        loaded = CurveFamily.from_json(path)
        assert loaded.read_ratios == family.read_ratios
        probe_bw = 0.5 * family.max_bandwidth_gbps
        assert loaded.latency_at(probe_bw, 1.0) == pytest.approx(
            family.latency_at(probe_bw, 1.0)
        )

    def test_mess_simulated_machine_matches_measured_one(
        self, measured, tiny_system_config_module
    ):
        """The paper's core claim, at test scale (cf. Figure 11)."""
        _, family = measured
        overhead = tiny_system_config_module.hierarchy.total_hit_path_ns

        def run_workloads(memory_factory):
            latency = LmbenchLatency(
                array_bytes=4 * 1024 * 1024, chase_ops=800
            ).run(System(tiny_system_config_module, memory_factory()))
            bandwidth = StreamWorkload(
                kernel="triad", lines_per_core=2500
            ).run(System(tiny_system_config_module, memory_factory()))
            return latency, bandwidth

        actual_lat, actual_bw = run_workloads(
            lambda: CycleAccurateModel(DDR4_2666, channels=2, write_queue_depth=48)
        )
        mess_lat, mess_bw = run_workloads(
            lambda: MessMemorySimulator(family, cpu_overhead_ns=overhead)
        )
        assert mess_lat == pytest.approx(actual_lat, rel=0.15)
        assert mess_bw == pytest.approx(actual_bw, rel=0.30)

    def test_write_allocate_visible_in_measured_ratios(self, measured):
        bench, _ = measured
        store_points = [p for p in bench.points if p.store_fraction == 1.0]
        assert all(
            p.measured_read_ratio == pytest.approx(0.5, abs=0.06)
            for p in store_points
        )
