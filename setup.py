"""Setuptools shim enabling offline `pip install -e .` (see pyproject.toml)."""

from setuptools import setup

setup()
